"""Token-bucket pacer — the sending machinery ACE-N controls.

Token rate tracks the CCA's estimate (set via ``set_pacing_rate``);
bucket size is set externally, by either a fixed policy or the
:class:`~repro.core.ace_n.AceNController`. With a bucket of one MTU the
behaviour degenerates to leaky-bucket pacing; with a bucket larger than
a frame, whole frames burst out back-to-back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.token_bucket import TokenBucket
from repro.net.packet import DEFAULT_PAYLOAD_BYTES, Packet
from repro.transport.pacer.base import Pacer

if TYPE_CHECKING:
    from repro.live.clock import Clock


class TokenBucketPacer(Pacer):
    """Pacer gated by a byte-denominated token bucket."""

    __slots__ = ("min_bucket_bytes", "max_queue_time_s", "rate_factor",
                 "bucket", "on_frame_enqueued", "_bucket_size_log")

    def __init__(self, loop: "Clock", send_fn: Callable[[Packet], None],
                 initial_bucket_bytes: float = 30_000.0,
                 min_bucket_bytes: float = 2 * DEFAULT_PAYLOAD_BYTES,
                 rate_factor: float = 2.5,
                 max_queue_time_s: Optional[float] = None,
                 on_frame_enqueued: Optional[Callable[[list[Packet]], None]] = None) -> None:
        super().__init__(loop, send_fn)
        self.min_bucket_bytes = min_bucket_bytes
        #: optional queue-time valve (disabled by default; see
        #: LeakyBucketPacer for why).
        self.max_queue_time_s = max_queue_time_s
        #: Token rate = rate_factor x the CCA's estimate. WebRTC's CC
        #: stack configures its pacer at 2.5x the target bitrate so the
        #: sender never self-throttles below the network's ability to
        #: drain; the token *bucket size* (ACE-N's knob) is what bounds
        #: instantaneous bursts.
        self.rate_factor = rate_factor
        self.bucket = TokenBucket(
            rate_bps=self.pacing_rate_bps * rate_factor,
            bucket_bytes=max(initial_bucket_bytes, min_bucket_bytes),
            now=loop.now,
        )
        self.on_frame_enqueued = on_frame_enqueued
        self._bucket_size_log: list[tuple[float, float]] = []

    # ------------------------------------------------------------------
    # control surface
    # ------------------------------------------------------------------
    def _token_rate(self) -> float:
        """Token rate the valve law prescribes for the current backlog."""
        token_rate = self.pacing_rate_bps * self.rate_factor
        if self.max_queue_time_s is not None:
            token_rate = max(token_rate,
                             self.queued_bytes * 8 / self.max_queue_time_s)
        return token_rate

    def set_pacing_rate(self, rate_bps: float) -> None:
        super().set_pacing_rate(rate_bps)
        self.bucket.set_rate(self._token_rate(), self.loop.now)
        # Rate changes can unblock the head packet sooner.
        self._schedule_pump(0.0)

    def set_bucket_size(self, bucket_bytes: float) -> None:
        """Resize the bucket (floored at ``min_bucket_bytes``)."""
        size = max(bucket_bytes, self.min_bucket_bytes)
        self.bucket.set_bucket_size(size, self.loop.now)
        self._bucket_size_log.append((self.loop.now, size))
        self._schedule_pump(0.0)

    @property
    def bucket_bytes(self) -> float:
        return self.bucket.bucket_bytes

    @property
    def bucket_size_log(self) -> list[tuple[float, float]]:
        """(time, bucket_bytes) history for the Fig. 25 style timelines."""
        return self._bucket_size_log

    # ------------------------------------------------------------------
    # pacing policy
    # ------------------------------------------------------------------
    def _next_send_delay(self, packet: Packet) -> float:
        return self.bucket.time_until_available(packet.size_bytes, self.loop.now)

    def on_send(self, packet: Packet) -> None:
        # time_until_available() clamps oversize demands to the bucket, so
        # consume() may legitimately fail only for packets larger than the
        # bucket; treat the bucket as drained in that case.
        if not self.bucket.consume(packet.size_bytes, self.loop.now):
            self.bucket.consume(self.bucket.tokens(self.loop.now), self.loop.now)
        if self.max_queue_time_s is not None:
            # The valve inflates the token rate with the backlog, so the
            # rate must deflate as the backlog drains — holding the
            # inflated rate until the CCA's next update would burst
            # above what ACE-N intended after the queue empties.
            self.bucket.set_rate(self._token_rate(), self.loop.now)

    def on_enqueue(self, packets: list[Packet]) -> None:
        if self.max_queue_time_s is not None:
            self.bucket.set_rate(self._token_rate(), self.loop.now)
        if self.on_frame_enqueued is not None and packets:
            self.on_frame_enqueued(packets)
