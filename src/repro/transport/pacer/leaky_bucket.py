"""WebRTC-style leaky-bucket pacer.

Flattens each frame into a uniform packet stream at ``pacing_factor x``
the estimated bandwidth. With factor 1.0 this is the conservative
pacing the paper calls "Pace"; with factor 2.5 it is the WebRTC-B
strawman (the deprecated high-pacing-rate WebRTC setting).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.net.packet import Packet
from repro.transport.pacer.base import Pacer

if TYPE_CHECKING:
    from repro.live.clock import Clock


class LeakyBucketPacer(Pacer):
    """Constant-rate drain: one packet every ``size * 8 / rate`` seconds.

    Optionally supports a WebRTC-style queue-time valve
    (``max_queue_time_s``): if draining the current queue at the
    configured rate would take longer than the bound, the drain rate is
    raised. Disabled by default — on a congested bottleneck a forced
    drain converts pacer queueing into packet loss, which costs more
    than the wait (the media pushback in the sender handles sustained
    backlog instead).
    """

    __slots__ = ("pacing_factor", "max_queue_time_s", "_next_send_time")

    def __init__(self, loop: "Clock", send_fn: Callable[[Packet], None],
                 pacing_factor: float = 1.0,
                 max_queue_time_s: float | None = None) -> None:
        super().__init__(loop, send_fn)
        if pacing_factor <= 0:
            raise ValueError("pacing factor must be positive")
        self.pacing_factor = pacing_factor
        self.max_queue_time_s = max_queue_time_s
        self._next_send_time = 0.0

    @property
    def effective_rate_bps(self) -> float:
        base = self.pacing_rate_bps * self.pacing_factor
        if self.max_queue_time_s is not None:
            base = max(base, self.queued_bytes * 8 / self.max_queue_time_s)
        return base

    def _next_send_delay(self, packet: Packet) -> float:
        return max(0.0, self._next_send_time - self.loop.now)

    def on_send(self, packet: Packet) -> None:
        serialization = packet.size_bytes * 8 / self.effective_rate_bps
        base = max(self._next_send_time, self.loop.now)
        self._next_send_time = base + serialization
