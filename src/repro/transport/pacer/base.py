"""Pacer interface and shared queue mechanics.

A pacer holds packetized frames between the encoder and the network and
decides *when* each packet leaves the sender — the sub-RTT sending
pattern the paper's whole argument is about. Concrete policies differ
only in how they compute the next send opportunity, so the queueing,
priority (retransmissions first) and bookkeeping live here.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.net.packet import Packet

if TYPE_CHECKING:
    from repro.live.clock import Clock, ScheduledCall


#: bound on the per-packet sample rings in :class:`PacerStats`. Generous
#: enough that every sim session in the test/bench suite keeps full
#: fidelity (a 20 s session at 20 Mbps releases ~42k packets, under the
#: cap — so sim metrics and golden fingerprints are untouched), small
#: enough that a wall-clock soak run's memory stays flat instead of
#: growing ~100 B per packet forever. Long-running many-session load
#: runs shrink it further per session via :meth:`PacerStats.rebound`.
DEFAULT_SAMPLE_CAP = 65_536


@dataclass(slots=True)
class PacerStats:
    """Counters the metrics layer reads off the pacer.

    The two sample sequences are bounded rings (oldest samples rotate
    out past :data:`DEFAULT_SAMPLE_CAP`): scalar counters are exact
    forever, per-packet samples keep a recent window — which is also
    exactly what live-mode percentile reporting wants.
    """

    enqueued_packets: int = 0
    sent_packets: int = 0
    enqueued_bytes: int = 0
    sent_bytes: int = 0
    #: (time, queued_bytes) samples on every enqueue/send (bounded ring).
    occupancy_samples: Deque[tuple[float, int]] = field(
        default_factory=lambda: deque(maxlen=DEFAULT_SAMPLE_CAP))
    #: per-packet pacing delays in seconds (bounded ring).
    pacing_delays: Deque[float] = field(
        default_factory=lambda: deque(maxlen=DEFAULT_SAMPLE_CAP))

    def rebound(self, cap: int) -> None:
        """Shrink (or grow) the sample rings to hold ``cap`` entries.

        Keeps the newest samples. Many-session soak runs call this per
        session so fleet memory is ``sessions * cap``, not unbounded.
        """
        self.occupancy_samples = deque(self.occupancy_samples, maxlen=cap)
        self.pacing_delays = deque(self.pacing_delays, maxlen=cap)


class Pacer(abc.ABC):
    """Base class: FIFO media queue + priority retransmission queue.

    Subclasses implement :meth:`_next_send_delay`, returning how long to
    wait before the head packet may be released (0 = immediately).

    ``loop`` is any :class:`~repro.live.clock.Clock`: pacers schedule
    their pump exclusively through the clock protocol, so the same
    policy code paces a simulated link or a real UDP socket.

    The hierarchy is slotted (every subclass declares ``__slots__``) —
    pacer state is touched on every packet send.
    """

    __slots__ = ("loop", "send_fn", "stats", "_audio_queue", "_media_queue",
                 "_rtx_queue", "_queued_bytes", "_pump_event",
                 "_pacing_rate_bps")

    def __init__(self, loop: "Clock",
                 send_fn: Callable[[Packet], None]) -> None:
        self.loop = loop
        self.send_fn = send_fn
        self.stats = PacerStats()
        self._audio_queue: Deque[Packet] = deque()
        self._media_queue: Deque[Packet] = deque()
        self._rtx_queue: Deque[Packet] = deque()
        self._queued_bytes = 0
        self._pump_event: Optional["ScheduledCall"] = None
        self._pacing_rate_bps = 1_000_000.0

    # ------------------------------------------------------------------
    # rate plumbing
    # ------------------------------------------------------------------
    @property
    def pacing_rate_bps(self) -> float:
        return self._pacing_rate_bps

    def set_pacing_rate(self, rate_bps: float) -> None:
        """Update the pacing rate (called when the CCA's estimate moves)."""
        self._pacing_rate_bps = max(rate_bps, 10_000.0)

    # ------------------------------------------------------------------
    # queue state
    # ------------------------------------------------------------------
    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def queued_packets(self) -> int:
        return (len(self._media_queue) + len(self._rtx_queue)
                + len(self._audio_queue))

    @property
    def is_empty(self) -> bool:
        return self.queued_packets == 0

    # ------------------------------------------------------------------
    # enqueue / release
    # ------------------------------------------------------------------
    def enqueue(self, packets: list[Packet]) -> None:
        """Add a frame's packet train to the pacing queue."""
        now = self.loop.now
        for packet in packets:
            packet.t_enqueue_pacer = now
            self._media_queue.append(packet)
            self._queued_bytes += packet.size_bytes
            self.stats.enqueued_packets += 1
            self.stats.enqueued_bytes += packet.size_bytes
        self.stats.occupancy_samples.append((now, self._queued_bytes))
        self.on_enqueue(packets)
        self._schedule_pump(0.0)

    def enqueue_retransmission(self, packet: Packet) -> None:
        """Queue a retransmission ahead of fresh media (WebRTC priority)."""
        packet.t_enqueue_pacer = self.loop.now
        self._rtx_queue.append(packet)
        self._queued_bytes += packet.size_bytes
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size_bytes
        self._schedule_pump(0.0)

    def enqueue_audio(self, packet: Packet) -> None:
        """Queue an audio packet at strict top priority (WebRTC order:
        audio > retransmissions > video)."""
        packet.t_enqueue_pacer = self.loop.now
        self._audio_queue.append(packet)
        self._queued_bytes += packet.size_bytes
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size_bytes
        self._schedule_pump(0.0)

    def on_enqueue(self, packets: list[Packet]) -> None:
        """Hook for subclasses (e.g. ACE-N's frame-boundary update)."""

    def _pop_next(self) -> Optional[Packet]:
        if self._audio_queue:
            return self._audio_queue.popleft()
        if self._rtx_queue:
            return self._rtx_queue.popleft()
        if self._media_queue:
            return self._media_queue.popleft()
        return None

    def _peek_next(self) -> Optional[Packet]:
        if self._audio_queue:
            return self._audio_queue[0]
        if self._rtx_queue:
            return self._rtx_queue[0]
        if self._media_queue:
            return self._media_queue[0]
        return None

    #: floor on positive pump delays — waits shorter than a microsecond
    #: cannot reliably advance the float clock and would spin the loop.
    MIN_PUMP_DELAY_S = 1e-6

    def cancel_pump(self) -> None:
        """Cancel any pending pump timer (live-session teardown).

        A non-empty pacer otherwise keeps rescheduling its pump forever
        on a wall clock — harmless when ``asyncio.run`` exits right
        after a single session, a timer leak under a long-running
        multi-session supervisor. Never called on the sim path.
        """
        if self._pump_event is not None:
            self._pump_event.cancel()
            self._pump_event = None

    def _schedule_pump(self, delay: float) -> None:
        if delay > 0:
            delay = max(delay, self.MIN_PUMP_DELAY_S)
        if self._pump_event is not None and not self._pump_event.cancelled:
            # A pump is already pending; let it run (it reschedules itself).
            if delay > 0:
                return
            self._pump_event.cancel()
        self._pump_event = self.loop.call_later(delay, self._pump, "pacer.pump")

    def _pump(self) -> None:
        self._pump_event = None
        audio = self._audio_queue
        rtx = self._rtx_queue
        media = self._media_queue
        while True:
            # Inline triage (audio > rtx > media) so peek and pop share
            # one pass; the three deques never change identity.
            if audio:
                queue = audio
            elif rtx:
                queue = rtx
            elif media:
                queue = media
            else:
                return
            head = queue[0]
            delay = self._next_send_delay(head)
            if delay > 0:
                self._schedule_pump(delay)
                return
            queue.popleft()
            self._release(head)

    def _release(self, packet: Packet) -> None:
        now = self.loop.now
        packet.t_leave_pacer = now
        size = packet.size_bytes
        queued = self._queued_bytes - size
        self._queued_bytes = queued
        stats = self.stats
        stats.sent_packets += 1
        stats.sent_bytes += size
        enq = packet.t_enqueue_pacer
        if enq is not None:
            stats.pacing_delays.append(now - enq)
        stats.occupancy_samples.append((now, queued))
        self.on_send(packet)
        self.send_fn(packet)

    def on_send(self, packet: Packet) -> None:
        """Hook for subclasses (e.g. token accounting)."""

    @abc.abstractmethod
    def _next_send_delay(self, packet: Packet) -> float:
        """Seconds until ``packet`` may be released (0 = now)."""
