"""Transport-wide feedback (RTCP-style) from receiver to sender.

Mirrors WebRTC's transport-wide congestion-control feedback: the
receiver batches per-packet (seq, send_time, arrival_time) reports on a
fixed interval and returns them with a loss summary and NACK list. The
sender's congestion controller, ACE-N's queue estimator, and the
retransmission logic all consume these messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.packet import Packet

#: WebRTC sends transport feedback roughly every 50-100 ms; we use 50 ms.
DEFAULT_FEEDBACK_INTERVAL_S = 0.05


@dataclass(frozen=True)
class PacketReport:
    """One received packet as seen by the receiver."""

    seq: int
    send_time: float
    arrival_time: float
    size_bytes: int
    frame_id: int = -1

    @property
    def one_way_delay(self) -> float:
        return self.arrival_time - self.send_time


@dataclass
class FeedbackMessage:
    """A batch of receive reports plus loss information."""

    created_at: float
    reports: List[PacketReport] = field(default_factory=list)
    nacked_seqs: List[int] = field(default_factory=list)
    #: highest sequence number seen so far (for loss accounting)
    highest_seq: int = -1
    #: receiver's cumulative count of distinct lost (never-received) seqs
    cumulative_lost: int = 0
    #: picture-loss indication: the receiver abandoned a frame and needs
    #: a decoder refresh (keyframe) to resume a valid reference chain.
    pli_requested: bool = False

    @property
    def received_bytes(self) -> int:
        return sum(r.size_bytes for r in self.reports)


class FeedbackBuilder:
    """Receiver-side accumulator producing periodic FeedbackMessages.

    Loss detection: a gap in sequence numbers is declared lost after a
    short reordering margin; lost seqs are NACKed (repeatedly, until the
    retransmission arrives or the frame is abandoned).
    """

    def __init__(self, reorder_margin: int = 3,
                 max_nacks_per_seq: int = 10) -> None:
        self.reorder_margin = reorder_margin
        self.max_nacks_per_seq = max_nacks_per_seq
        self._pending: List[PacketReport] = []
        self._highest_seq = -1
        self._received_seqs: set[int] = set()
        self._nack_counts: dict[int, int] = {}
        self._recovered: set[int] = set()
        self._cumulative_lost = 0

    def on_packet(self, packet: Packet) -> None:
        """Record an arriving media packet."""
        report = PacketReport(
            seq=packet.seq,
            send_time=packet.t_leave_pacer if packet.t_leave_pacer is not None else 0.0,
            arrival_time=packet.t_arrival if packet.t_arrival is not None else 0.0,
            size_bytes=packet.size_bytes,
            frame_id=packet.frame_id,
        )
        self._pending.append(report)
        if packet.retransmission_of is not None:
            self._recovered.add(packet.retransmission_of)
            self._nack_counts.pop(packet.retransmission_of, None)
            return
        if packet.seq < 0:
            return  # separate stream (e.g. FEC parity): no gap tracking
        self._received_seqs.add(packet.seq)
        self._highest_seq = max(self._highest_seq, packet.seq)

    def _missing_seqs(self) -> List[int]:
        """Sequence numbers presumed lost (beyond the reordering margin)."""
        if self._highest_seq < 0:
            return []
        horizon = self._highest_seq - self.reorder_margin
        missing = []
        # Only scan a bounded window back from the horizon; older holes
        # have either been NACKed to exhaustion or recovered.
        window_start = max(0, horizon - 2000)
        for seq in range(window_start, horizon + 1):
            if seq in self._received_seqs or seq in self._recovered:
                continue
            count = self._nack_counts.get(seq, 0)
            if count >= self.max_nacks_per_seq:
                continue
            missing.append(seq)
        return missing

    def build(self, now: float) -> FeedbackMessage:
        """Emit the feedback message for the elapsed interval."""
        nacks = self._missing_seqs()
        for seq in nacks:
            before = self._nack_counts.get(seq, 0)
            if before == 0:
                self._cumulative_lost += 1
            self._nack_counts[seq] = before + 1
        message = FeedbackMessage(
            created_at=now,
            reports=list(self._pending),
            nacked_seqs=nacks,
            highest_seq=self._highest_seq,
            cumulative_lost=self._cumulative_lost,
        )
        self._pending.clear()
        return message
