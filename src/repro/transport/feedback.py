"""Transport-wide feedback (RTCP-style) from receiver to sender.

Mirrors WebRTC's transport-wide congestion-control feedback: the
receiver batches per-packet (seq, send_time, arrival_time) reports on a
fixed interval and returns them with a loss summary and NACK list. The
sender's congestion controller, ACE-N's queue estimator, and the
retransmission logic all consume these messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.net.packet import Packet

#: WebRTC sends transport feedback roughly every 50-100 ms; we use 50 ms.
DEFAULT_FEEDBACK_INTERVAL_S = 0.05


class PacketReport:
    """One received packet as seen by the receiver.

    A slotted plain class rather than a dataclass: one report is
    allocated per received packet, which makes construction cost part of
    the simulator's hot path. Treat instances as immutable.
    """

    __slots__ = ("seq", "send_time", "arrival_time", "size_bytes", "frame_id")

    def __init__(self, seq: int, send_time: float, arrival_time: float,
                 size_bytes: int, frame_id: int = -1) -> None:
        self.seq = seq
        self.send_time = send_time
        self.arrival_time = arrival_time
        self.size_bytes = size_bytes
        self.frame_id = frame_id

    @property
    def one_way_delay(self) -> float:
        return self.arrival_time - self.send_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PacketReport(seq={self.seq}, send_time={self.send_time}, "
                f"arrival_time={self.arrival_time}, "
                f"size_bytes={self.size_bytes}, frame_id={self.frame_id})")


class _ReportChunk:
    """A contiguous run of received packets recorded column-wise.

    The batch engine delivers whole packet trains at once; recording one
    object per train (rather than one :class:`PacketReport` per packet)
    keeps feedback accumulation off the per-packet path.
    """

    __slots__ = ("seq0", "send_times", "arrival_times", "sizes", "frame_id")

    def __init__(self, seq0: int, send_times: np.ndarray,
                 arrival_times: np.ndarray, sizes: np.ndarray,
                 frame_id: int) -> None:
        self.seq0 = seq0
        self.send_times = send_times
        self.arrival_times = arrival_times
        self.sizes = sizes
        self.frame_id = frame_id

    def materialize(self) -> List[PacketReport]:
        seq0 = self.seq0
        frame_id = self.frame_id
        return [
            PacketReport(seq0 + i, send, arrival, size, frame_id)
            for i, (send, arrival, size) in enumerate(
                zip(self.send_times.tolist(), self.arrival_times.tolist(),
                    self.sizes.tolist()))
        ]


class ReportBatch:
    """Column-oriented stand-in for a list of :class:`PacketReport`.

    Array-aware consumers (GCC's delay signal, the queue estimator, the
    RTT observers) read the columns directly; everything else iterates
    and transparently gets lazily-materialized :class:`PacketReport`
    objects at reference-path cost.
    """

    __slots__ = ("send_times", "arrival_times", "sizes", "total_bytes",
                 "_chunks", "_seqs", "_frame_ids", "_materialized")

    def __init__(self, chunks: Sequence[_ReportChunk]) -> None:
        if len(chunks) == 1:
            # Alias the chunk's columns directly — chunk arrays are
            # immutable once recorded, so no defensive copy is needed.
            c = chunks[0]
            self.send_times = c.send_times
            self.arrival_times = c.arrival_times
            self.sizes = c.sizes
        else:
            self.send_times = np.concatenate([c.send_times for c in chunks])
            self.arrival_times = np.concatenate(
                [c.arrival_times for c in chunks])
            self.sizes = np.concatenate([c.sizes for c in chunks])
        self.total_bytes = int(self.sizes.sum())
        self._chunks = tuple(chunks)
        self._seqs: Optional[np.ndarray] = None
        self._frame_ids: Optional[np.ndarray] = None
        self._materialized: Optional[List[PacketReport]] = None

    @property
    def seqs(self) -> np.ndarray:
        # Built on demand: the fast-path consumers (GCC delay signal,
        # queue estimator, packet-pair) never read per-packet seqs.
        if self._seqs is None:
            self._seqs = np.concatenate(
                [np.arange(c.seq0, c.seq0 + len(c.sizes))
                 for c in self._chunks])
        return self._seqs

    @property
    def frame_ids(self) -> np.ndarray:
        if self._frame_ids is None:
            self._frame_ids = np.concatenate(
                [np.full(len(c.sizes), c.frame_id) for c in self._chunks])
        return self._frame_ids

    def _reports(self) -> List[PacketReport]:
        if self._materialized is None:
            self._materialized = [
                PacketReport(int(seq), send, arrival, int(size), int(fid))
                for seq, send, arrival, size, fid in zip(
                    self.seqs.tolist(), self.send_times.tolist(),
                    self.arrival_times.tolist(), self.sizes.tolist(),
                    self.frame_ids.tolist())
            ]
        return self._materialized

    def __len__(self) -> int:
        return len(self.sizes)

    def __iter__(self):
        return iter(self._reports())

    def __getitem__(self, index):
        return self._reports()[index]


@dataclass
class FeedbackMessage:
    """A batch of receive reports plus loss information."""

    created_at: float
    reports: Union[List[PacketReport], ReportBatch] = field(
        default_factory=list)
    nacked_seqs: List[int] = field(default_factory=list)
    #: highest sequence number seen so far (for loss accounting)
    highest_seq: int = -1
    #: receiver's cumulative count of distinct lost (never-received) seqs
    cumulative_lost: int = 0
    #: picture-loss indication: the receiver abandoned a frame and needs
    #: a decoder refresh (keyframe) to resume a valid reference chain.
    pli_requested: bool = False

    @property
    def received_bytes(self) -> int:
        reports = self.reports
        if type(reports) is ReportBatch:
            return reports.total_bytes
        return sum(r.size_bytes for r in reports)


class FeedbackBuilder:
    """Receiver-side accumulator producing periodic FeedbackMessages.

    Loss detection: a gap in sequence numbers is declared lost after a
    short reordering margin; lost seqs are NACKed (repeatedly, until the
    retransmission arrives or the frame is abandoned).
    """

    def __init__(self, reorder_margin: int = 3,
                 max_nacks_per_seq: int = 10) -> None:
        self.reorder_margin = reorder_margin
        self.max_nacks_per_seq = max_nacks_per_seq
        self._pending: List[Union[PacketReport, _ReportChunk]] = []
        self._has_chunks = False
        self._highest_seq = -1
        self._received_seqs: set[int] = set()
        self._nack_counts: dict[int, int] = {}
        self._recovered: set[int] = set()
        self._cumulative_lost = 0
        #: every seq below this is resolved (received, recovered, or
        #: NACKed to exhaustion) — lets _missing_seqs skip re-scanning.
        self._resolved_floor = 0

    def on_packet(self, packet: Packet) -> None:
        """Record an arriving media packet."""
        send_time = packet.t_leave_pacer
        arrival_time = packet.t_arrival
        self._pending.append(PacketReport(
            packet.seq,
            send_time if send_time is not None else 0.0,
            arrival_time if arrival_time is not None else 0.0,
            packet.size_bytes,
            packet.frame_id,
        ))
        if packet.retransmission_of is not None:
            self._recovered.add(packet.retransmission_of)
            self._nack_counts.pop(packet.retransmission_of, None)
            return
        seq = packet.seq
        if seq < 0:
            return  # separate stream (e.g. FEC parity): no gap tracking
        self._received_seqs.add(seq)
        if seq > self._highest_seq:
            self._highest_seq = seq

    def on_chunk(self, seq0: int, send_times: np.ndarray,
                 arrival_times: np.ndarray, sizes: np.ndarray,
                 frame_id: int) -> None:
        """Record a contiguous train of arriving media packets.

        Batch-engine equivalent of ``on_packet`` for fresh (never
        retransmitted, non-negative-seq) media packets only.
        """
        count = len(sizes)
        self._pending.append(_ReportChunk(
            seq0, send_times, arrival_times, sizes, frame_id))
        self._has_chunks = True
        self._received_seqs.update(range(seq0, seq0 + count))
        last = seq0 + count - 1
        if last > self._highest_seq:
            self._highest_seq = last

    def _missing_seqs(self) -> List[int]:
        """Sequence numbers presumed lost (beyond the reordering margin)."""
        if self._highest_seq < 0:
            return []
        horizon = self._highest_seq - self.reorder_margin
        # Only scan a bounded window back from the horizon; older holes
        # have either been NACKed to exhaustion or recovered. The scan
        # starts at the resolved floor — everything below it has already
        # been classified as resolved and can never become missing again.
        window_start = max(0, horizon - 2000)
        floor = self._resolved_floor
        if floor < window_start:
            floor = window_start
        missing = []
        received = self._received_seqs
        recovered = self._recovered
        counts = self._nack_counts
        max_nacks = self.max_nacks_per_seq
        at_floor = True
        for seq in range(floor, horizon + 1):
            if seq in received or seq in recovered:
                if at_floor:
                    floor = seq + 1
                continue
            if counts.get(seq, 0) >= max_nacks:
                if at_floor:
                    floor = seq + 1
                continue
            missing.append(seq)
            at_floor = False
        self._resolved_floor = floor
        return missing

    def build(self, now: float) -> FeedbackMessage:
        """Emit the feedback message for the elapsed interval."""
        nacks = self._missing_seqs()
        for seq in nacks:
            before = self._nack_counts.get(seq, 0)
            if before == 0:
                self._cumulative_lost += 1
            self._nack_counts[seq] = before + 1
        pending = self._pending
        reports: Union[List[PacketReport], ReportBatch]
        if not self._has_chunks:
            reports = pending
        elif all(type(entry) is _ReportChunk for entry in pending):
            reports = ReportBatch(pending)
        else:
            # Mixed scalar reports (retransmissions delivered on the
            # batch engine's scalar lane) and chunks: flatten in arrival
            # order so consumers see the reference-shaped list.
            reports = []
            for entry in pending:
                if type(entry) is _ReportChunk:
                    reports.extend(entry.materialize())
                else:
                    reports.append(entry)
        message = FeedbackMessage(
            created_at=now,
            reports=reports,
            nacked_seqs=nacks,
            highest_seq=self._highest_seq,
            cumulative_lost=self._cumulative_lost,
        )
        self._pending = []
        self._has_chunks = False
        return message
