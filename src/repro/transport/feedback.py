"""Transport-wide feedback (RTCP-style) from receiver to sender.

Mirrors WebRTC's transport-wide congestion-control feedback: the
receiver batches per-packet (seq, send_time, arrival_time) reports on a
fixed interval and returns them with a loss summary and NACK list. The
sender's congestion controller, ACE-N's queue estimator, and the
retransmission logic all consume these messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.packet import Packet

#: WebRTC sends transport feedback roughly every 50-100 ms; we use 50 ms.
DEFAULT_FEEDBACK_INTERVAL_S = 0.05


class PacketReport:
    """One received packet as seen by the receiver.

    A slotted plain class rather than a dataclass: one report is
    allocated per received packet, which makes construction cost part of
    the simulator's hot path. Treat instances as immutable.
    """

    __slots__ = ("seq", "send_time", "arrival_time", "size_bytes", "frame_id")

    def __init__(self, seq: int, send_time: float, arrival_time: float,
                 size_bytes: int, frame_id: int = -1) -> None:
        self.seq = seq
        self.send_time = send_time
        self.arrival_time = arrival_time
        self.size_bytes = size_bytes
        self.frame_id = frame_id

    @property
    def one_way_delay(self) -> float:
        return self.arrival_time - self.send_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PacketReport(seq={self.seq}, send_time={self.send_time}, "
                f"arrival_time={self.arrival_time}, "
                f"size_bytes={self.size_bytes}, frame_id={self.frame_id})")


@dataclass
class FeedbackMessage:
    """A batch of receive reports plus loss information."""

    created_at: float
    reports: List[PacketReport] = field(default_factory=list)
    nacked_seqs: List[int] = field(default_factory=list)
    #: highest sequence number seen so far (for loss accounting)
    highest_seq: int = -1
    #: receiver's cumulative count of distinct lost (never-received) seqs
    cumulative_lost: int = 0
    #: picture-loss indication: the receiver abandoned a frame and needs
    #: a decoder refresh (keyframe) to resume a valid reference chain.
    pli_requested: bool = False

    @property
    def received_bytes(self) -> int:
        return sum(r.size_bytes for r in self.reports)


class FeedbackBuilder:
    """Receiver-side accumulator producing periodic FeedbackMessages.

    Loss detection: a gap in sequence numbers is declared lost after a
    short reordering margin; lost seqs are NACKed (repeatedly, until the
    retransmission arrives or the frame is abandoned).
    """

    def __init__(self, reorder_margin: int = 3,
                 max_nacks_per_seq: int = 10) -> None:
        self.reorder_margin = reorder_margin
        self.max_nacks_per_seq = max_nacks_per_seq
        self._pending: List[PacketReport] = []
        self._highest_seq = -1
        self._received_seqs: set[int] = set()
        self._nack_counts: dict[int, int] = {}
        self._recovered: set[int] = set()
        self._cumulative_lost = 0
        #: every seq below this is resolved (received, recovered, or
        #: NACKed to exhaustion) — lets _missing_seqs skip re-scanning.
        self._resolved_floor = 0

    def on_packet(self, packet: Packet) -> None:
        """Record an arriving media packet."""
        send_time = packet.t_leave_pacer
        arrival_time = packet.t_arrival
        self._pending.append(PacketReport(
            packet.seq,
            send_time if send_time is not None else 0.0,
            arrival_time if arrival_time is not None else 0.0,
            packet.size_bytes,
            packet.frame_id,
        ))
        if packet.retransmission_of is not None:
            self._recovered.add(packet.retransmission_of)
            self._nack_counts.pop(packet.retransmission_of, None)
            return
        seq = packet.seq
        if seq < 0:
            return  # separate stream (e.g. FEC parity): no gap tracking
        self._received_seqs.add(seq)
        if seq > self._highest_seq:
            self._highest_seq = seq

    def _missing_seqs(self) -> List[int]:
        """Sequence numbers presumed lost (beyond the reordering margin)."""
        if self._highest_seq < 0:
            return []
        horizon = self._highest_seq - self.reorder_margin
        # Only scan a bounded window back from the horizon; older holes
        # have either been NACKed to exhaustion or recovered. The scan
        # starts at the resolved floor — everything below it has already
        # been classified as resolved and can never become missing again.
        window_start = max(0, horizon - 2000)
        floor = self._resolved_floor
        if floor < window_start:
            floor = window_start
        missing = []
        received = self._received_seqs
        recovered = self._recovered
        counts = self._nack_counts
        max_nacks = self.max_nacks_per_seq
        at_floor = True
        for seq in range(floor, horizon + 1):
            if seq in received or seq in recovered:
                if at_floor:
                    floor = seq + 1
                continue
            if counts.get(seq, 0) >= max_nacks:
                if at_floor:
                    floor = seq + 1
                continue
            missing.append(seq)
            at_floor = False
        self._resolved_floor = floor
        return missing

    def build(self, now: float) -> FeedbackMessage:
        """Emit the feedback message for the elapsed interval."""
        nacks = self._missing_seqs()
        for seq in nacks:
            before = self._nack_counts.get(seq, 0)
            if before == 0:
                self._cumulative_lost += 1
            self._nack_counts[seq] = before + 1
        message = FeedbackMessage(
            created_at=now,
            reports=self._pending,
            nacked_seqs=nacks,
            highest_seq=self._highest_seq,
            cumulative_lost=self._cumulative_lost,
        )
        self._pending = []
        return message
