"""Forward error correction (XOR parity) for the RTC pipeline.

The paper leaves co-designing ACE with loss recovery as future work
(§8: "our strategy ACE-N takes loss as input; random loss which should
be dealt with by FEC may be noise to our algorithm"). This module
provides that substrate: a WebRTC-FlexFEC-style XOR parity scheme so
random wireless loss can be repaired without NACK round trips, plus an
adaptive redundancy controller driven by the observed loss rate.

Scheme: each frame's packet train is split into groups of up to
``group_size`` packets; each group gets one parity packet (the XOR of
the group). Any single loss within a group is recoverable immediately;
burst losses within a group still fall back to NACK retransmission.
Only metadata is simulated (packet contents never exist), so "XOR" here
is bookkeeping: a parity packet knows which sequence numbers it covers
and the receiver reconstructs a missing packet when all other group
members plus the parity have arrived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.net.packet import Packet, PacketType


@dataclass
class FecConfig:
    """Tunables of the FEC encoder."""

    #: media packets covered per parity packet (smaller = more overhead,
    #: more single-loss protection).
    group_size: int = 10
    #: adaptive mode: scale group size down as loss rises.
    adaptive: bool = True
    min_group_size: int = 4
    max_group_size: int = 20
    #: loss EWMA smoothing for the adaptive controller.
    loss_alpha: float = 0.3


class FecEncoder:
    """Sender-side parity generation over each frame's packet train."""

    def __init__(self, config: Optional[FecConfig] = None) -> None:
        self.config = config or FecConfig()
        self._group_size = self.config.group_size
        self._loss_ewma = 0.0
        self.parity_sent = 0

    @property
    def group_size(self) -> int:
        return self._group_size

    def observe_loss_rate(self, loss_rate: float) -> None:
        """Adapt redundancy to the observed loss rate."""
        cfg = self.config
        self._loss_ewma = (cfg.loss_alpha * loss_rate
                           + (1 - cfg.loss_alpha) * self._loss_ewma)
        if not cfg.adaptive:
            return
        # Aim for parity spacing such that the expected losses per group
        # stay below ~1: group ~= 1 / (2 * loss).
        if self._loss_ewma < 1e-4:
            self._group_size = cfg.max_group_size
        else:
            target = int(1.0 / (2 * self._loss_ewma))
            self._group_size = min(max(target, cfg.min_group_size),
                                   cfg.max_group_size)

    def protect(self, packets: list[Packet]) -> list[Packet]:
        """Interleave parity packets into a frame's packet train.

        Returns the full train (media + parity) in send order; parity
        packets carry ``fec_covers`` metadata listing the sequence
        numbers they repair.
        """
        out: list[Packet] = []
        group: list[Packet] = []
        for packet in packets:
            out.append(packet)
            group.append(packet)
            if len(group) >= self._group_size:
                out.append(self._parity_for(group))
                group = []
        if group:
            out.append(self._parity_for(group))
        return out

    def _parity_for(self, group: list[Packet]) -> Packet:
        parity = Packet(
            size_bytes=max(p.size_bytes for p in group),
            ptype=PacketType.PROBE,  # non-media; reuse probe plumbing
            frame_id=group[0].frame_id,
            frame_packet_index=-1,
            frame_packet_count=group[0].frame_packet_count,
        )
        parity.fec_covers = [p.seq for p in group]  # type: ignore[attr-defined]
        # Reconstruction metadata: what each covered packet *was* (a real
        # parity packet carries this in its FlexFEC header + XOR payload).
        parity.fec_meta = {  # type: ignore[attr-defined]
            p.seq: (p.frame_id, p.frame_packet_index,
                    p.frame_packet_count, p.size_bytes)
            for p in group
        }
        self.parity_sent += 1
        return parity


@dataclass
class FecStats:
    parity_received: int = 0
    repairs: int = 0
    unrepairable_groups: int = 0


class FecDecoder:
    """Receiver-side single-loss repair from parity packets.

    The decoder watches media arrivals and parity arrivals; when a
    parity packet's coverage set is missing exactly one member and the
    rest have arrived, the missing packet is reconstructed and handed to
    ``on_repair`` as if it had arrived.
    """

    def __init__(self, on_repair: Callable[[int], None]) -> None:
        self.on_repair = on_repair
        self.stats = FecStats()
        self._received: set[int] = set()
        #: parity coverage sets still waiting for repairs.
        self._pending: list[list[int]] = []

    def on_media(self, seq: int) -> None:
        self._received.add(seq)
        if self._pending:
            self._try_repairs()

    def on_parity(self, covers: Iterable[int]) -> None:
        self.stats.parity_received += 1
        self._pending.append(list(covers))
        self._try_repairs()

    def _try_repairs(self) -> None:
        still_pending: list[list[int]] = []
        for covers in self._pending:
            missing = [seq for seq in covers if seq not in self._received]
            if not missing:
                continue  # fully received; parity no longer needed
            if len(missing) == 1:
                seq = missing[0]
                self._received.add(seq)
                self.stats.repairs += 1
                self.on_repair(seq)
                continue
            still_pending.append(covers)
        self._pending = still_pending

    def pending_groups(self) -> int:
        return len(self._pending)

    def give_up_older_than(self, min_seq: int) -> None:
        """Drop parity state for groups entirely below ``min_seq``."""
        before = len(self._pending)
        self._pending = [c for c in self._pending if max(c) >= min_seq]
        self.stats.unrepairable_groups += before - len(self._pending)
