"""Transport substrate: packetization, feedback, pacing, congestion control.

Structured after the WebRTC sender stack the paper patches: encoded
frames are packetized (RTP-style), queued into a pacer, and released
into the network; the receiver returns transport-wide feedback
(per-packet receive timestamps plus loss reports) that drives the
congestion controller and — in ACE — the ACE-N bucket adaptation.
"""

from repro.transport.rtp import Packetizer
from repro.transport.feedback import FeedbackMessage, FeedbackBuilder, PacketReport
from repro.transport.pacer.base import Pacer, PacerStats
from repro.transport.pacer.leaky_bucket import LeakyBucketPacer
from repro.transport.pacer.burst import BurstPacer
from repro.transport.pacer.token_bucket_pacer import TokenBucketPacer
from repro.transport.cc.base import CongestionController
from repro.transport.cc.gcc import GccController
from repro.transport.cc.bbr import BbrController
from repro.transport.cc.copa import CopaController
from repro.transport.cc.delivery_rate import DeliveryRateController
from repro.transport.receiver import TransportReceiver, FrameRecord
from repro.transport.fec import FecConfig, FecDecoder, FecEncoder
from repro.transport.audio import AudioReceiver, AudioSource
from repro.transport.playout import PlayoutBuffer, PlayoutConfig

__all__ = [
    "Packetizer",
    "FeedbackMessage",
    "FeedbackBuilder",
    "PacketReport",
    "Pacer",
    "PacerStats",
    "LeakyBucketPacer",
    "BurstPacer",
    "TokenBucketPacer",
    "CongestionController",
    "GccController",
    "BbrController",
    "CopaController",
    "DeliveryRateController",
    "TransportReceiver",
    "FrameRecord",
    "FecConfig",
    "FecEncoder",
    "FecDecoder",
    "AudioSource",
    "AudioReceiver",
    "PlayoutBuffer",
    "PlayoutConfig",
]
