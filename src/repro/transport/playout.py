"""Adaptive playout buffer (NetEQ-style display scheduling).

The paper's evaluation displays frames as soon as they decode, which is
the right measurement mode for end-to-end latency. Real receivers
instead schedule playout at ``capture + target_delay`` where the target
adapts to observed delay jitter: a small constant delay is traded for a
smooth cadence (fewer stall events), because frames arriving early wait
while late frames have headroom.

The controller keeps the target near a high percentile of recent
network delays (plus a safety margin), growing fast on underruns and
shrinking slowly when the buffer is consistently slack.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque


@dataclass
class PlayoutConfig:
    """Tunables of the playout controller."""

    #: initial capture-to-display target (seconds).
    initial_target: float = 0.10
    min_target: float = 0.04
    max_target: float = 1.00
    #: window of recent capture->decode delays the target tracks.
    window: int = 120
    #: percentile of recent delays the target sits at.
    percentile: float = 95.0
    #: safety margin above the percentile (seconds).
    margin: float = 0.01
    #: growth on underrun (a frame that would miss its slot), multiplicative.
    underrun_boost: float = 1.25
    #: slow decay toward the tracked percentile per scheduled frame.
    decay: float = 0.02


class PlayoutBuffer:
    """Schedules display times at an adaptive capture-relative target."""

    def __init__(self, config: PlayoutConfig | None = None) -> None:
        self.config = config or PlayoutConfig()
        self._target = self.config.initial_target
        self._delays: Deque[float] = deque(maxlen=self.config.window)
        self.underruns = 0
        self.scheduled = 0

    @property
    def target_delay(self) -> float:
        return self._target

    def schedule(self, capture_time: float, earliest_display: float) -> float:
        """Return the display time for a frame decodable at
        ``earliest_display`` that was captured at ``capture_time``."""
        cfg = self.config
        delay = earliest_display - capture_time
        self._delays.append(delay)
        self.scheduled += 1

        slot = capture_time + self._target
        if slot < earliest_display:
            # Underrun: the frame cannot make its slot; display late and
            # grow the target so the cadence recovers headroom.
            self.underruns += 1
            self._target = min(cfg.max_target,
                               max(self._target * cfg.underrun_boost,
                                   delay + cfg.margin))
            return earliest_display
        # On time: decay the target toward the tracked delay percentile.
        tracked = self._tracked_percentile() + cfg.margin
        self._target += cfg.decay * (tracked - self._target)
        self._target = min(max(self._target, cfg.min_target), cfg.max_target)
        return slot

    def _tracked_percentile(self) -> float:
        if not self._delays:
            return self._target
        ordered = sorted(self._delays)
        idx = min(len(ordered) - 1,
                  int(len(ordered) * self.config.percentile / 100.0))
        return ordered[idx]
