"""RTP-style packetization of encoded frames."""

from __future__ import annotations

from typing import List

from repro.net.packet import DEFAULT_PAYLOAD_BYTES, Packet, PacketType
from repro.video.frame import EncodedFrame


class Packetizer:
    """Splits encoded frames into fixed-MTU packets with sequence numbers.

    A 30 Mbps, 30 fps stream yields >100 packets per frame — the
    burstiness the whole paper is about — so the per-frame packet count
    must be faithful.
    """

    def __init__(self, payload_bytes: int = DEFAULT_PAYLOAD_BYTES) -> None:
        if payload_bytes <= 0:
            raise ValueError("payload size must be positive")
        self.payload_bytes = payload_bytes
        self._next_seq = 0

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def packet_count(self, size_bytes: int) -> int:
        """Number of packets a frame of ``size_bytes`` occupies."""
        count = (size_bytes + self.payload_bytes - 1) // self.payload_bytes
        return count if count > 1 else 1

    def packetize(self, frame: EncodedFrame,
                  prev_sent_frame_id: int | None = None) -> List[Packet]:
        """Produce the packet train for ``frame`` in send order.

        ``prev_sent_frame_id`` is stamped on the first packet so the
        receiver can distinguish sender-dropped frames (a frame-id gap
        it must not wait on) from in-flight loss — the continuity signal
        real RTP gets from sequence numbers.
        """
        count = self.packet_count(frame.size_bytes)
        payload = self.payload_bytes
        frame_id = frame.frame_id
        seq = self._next_seq
        packets: List[Packet] = []
        append = packets.append
        remaining = frame.size_bytes
        for index in range(count):
            size = payload if remaining > payload else remaining
            remaining -= size
            append(Packet(
                size_bytes=size,
                ptype=PacketType.VIDEO,
                seq=seq + index,
                frame_id=frame_id,
                frame_packet_index=index,
                frame_packet_count=count,
            ))
        self._next_seq = seq + count
        if prev_sent_frame_id is not None:
            packets[0].prev_sent_frame_id = prev_sent_frame_id
        return packets

    def assign_seq(self, packet: Packet) -> Packet:
        """Give a retransmission (or probe) packet a fresh sequence number."""
        packet.seq = self._next_seq
        self._next_seq += 1
        return packet
