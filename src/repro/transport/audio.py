"""Audio substream: Opus-style constant-cadence packets with pacer priority.

Real RTC sessions multiplex audio with video. Audio is tiny (an Opus
frame every 20 ms, ~160 bytes) but latency-critical, and WebRTC's pacer
gives it strict priority over video. That priority is what protects
speech when an oversized video frame backlogs the pacer — and a useful
lens on burstiness control: a pacer stuffed with video hurts audio only
as much as its head-of-line packet.

The audio stream rides the existing media machinery: packets carry
``frame_id = -1`` (not video-frame bookkeeping) and their own
``audio_seq`` numbering; the receiver records per-packet mouth-to-ear
delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import Packet, PacketType

if TYPE_CHECKING:
    from repro.live.clock import Clock

#: Opus defaults: one frame every 20 ms, ~64 kbps -> 160 B payloads.
AUDIO_INTERVAL_S = 0.020
AUDIO_PAYLOAD_BYTES = 160


@dataclass
class AudioStats:
    sent: int = 0
    received: int = 0
    #: mouth-to-ear delays (capture -> arrival), seconds.
    delays: list = field(default_factory=list)


class AudioSource:
    """Generates the audio packet cadence on the event loop.

    ``enqueue_fn`` receives each packet; the sender wires it into the
    pacer's priority queue.
    """

    def __init__(self, loop: "Clock",
                 enqueue_fn: Callable[[Packet], None],
                 interval_s: float = AUDIO_INTERVAL_S,
                 payload_bytes: int = AUDIO_PAYLOAD_BYTES) -> None:
        self.loop = loop
        self.enqueue_fn = enqueue_fn
        self.interval_s = interval_s
        self.payload_bytes = payload_bytes
        self.stats = AudioStats()
        self._seq = 0
        self._stopped = False

    def start(self) -> None:
        self.loop.call_later(0.0, self._tick, name="audio.capture")

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        packet = Packet(
            size_bytes=self.payload_bytes,
            ptype=PacketType.VIDEO,   # shares the media path
            seq=-1,                   # not in the video NACK space
            frame_id=-1,
        )
        packet.audio_seq = self._seq          # type: ignore[attr-defined]
        packet.audio_capture = self.loop.now  # type: ignore[attr-defined]
        self._seq += 1
        self.stats.sent += 1
        self.enqueue_fn(packet)
        self.loop.call_later(self.interval_s, self._tick, name="audio.capture")


class AudioReceiver:
    """Collects mouth-to-ear delays for arriving audio packets."""

    def __init__(self, loop: "Clock") -> None:
        self.loop = loop
        self.stats = AudioStats()

    def on_packet(self, packet: Packet) -> bool:
        """Returns True when the packet was an audio packet (consumed)."""
        if packet.frame_id >= 0:
            # Video/RTX/parity packets all carry a frame id; only audio
            # uses -1. Rejecting here skips the getattr fallback (an
            # AttributeError per packet on slotted Packets).
            return False
        capture = getattr(packet, "audio_capture", None)
        if capture is None:
            return False
        self.stats.received += 1
        self.stats.delays.append(self.loop.now - capture)
        return True

    def p95_delay(self) -> float:
        if not self.stats.delays:
            return float("nan")
        import numpy as np

        return float(np.percentile(self.stats.delays, 95))
