"""Delivery-rate congestion controller (Salsify / production-engine style).

Salsify's transport and the paper's production cloud-gaming engine do
not run GCC; they estimate available bandwidth directly from the rate at
which packets reach the receiver (Salsify: mean inter-arrival over the
last frame group; WebRTC's REMB era worked similarly). This controller
keeps bursty senders functional where GCC's delay-gradient detector
would spiral down: BWE tracks an EWMA of the delivered rate with a small
headroom, and backs off multiplicatively only on significant loss.
"""

from __future__ import annotations

from typing import Optional

from repro.transport.cc.base import CongestionController
from repro.transport.feedback import FeedbackMessage


class DeliveryRateController(CongestionController):
    """BWE = headroom x EWMA(delivered rate), loss-backed-off."""

    def __init__(self, initial_bwe_bps: float = 2_000_000.0,
                 headroom: float = 1.15, ewma_alpha: float = 0.3,
                 loss_backoff_threshold: float = 0.05,
                 probe_factor: float = 1.02,
                 delay_brake_s: float = 0.08, **kwargs) -> None:
        super().__init__(initial_bwe_bps=initial_bwe_bps, **kwargs)
        self.headroom = headroom
        self.ewma_alpha = ewma_alpha
        self.loss_backoff_threshold = loss_backoff_threshold
        self.probe_factor = probe_factor
        #: one-way-delay excess over the floor that triggers a backoff —
        #: the engine's delay awareness (production CCAs for cloud
        #: gaming are latency-sensitive, not pure throughput trackers).
        self.delay_brake_s = delay_brake_s
        self._rate_ewma: Optional[float] = None
        self._owd_min: Optional[float] = None
        self._last_feedback_at: Optional[float] = None
        self._last_seen_highest = -1
        self._last_cumulative_lost = 0

    def on_feedback(self, message: FeedbackMessage, now: float) -> None:
        loss_rate = self._interval_loss(message)
        owd_excess = self._observe_delay(message)
        if self._last_feedback_at is not None and message.reports:
            interval = max(now - self._last_feedback_at, 1e-3)
            rate = message.received_bytes * 8 / interval
            if self._rate_ewma is None:
                self._rate_ewma = rate
            else:
                self._rate_ewma = (self.ewma_alpha * rate
                                   + (1 - self.ewma_alpha) * self._rate_ewma)
        self._last_feedback_at = now
        if self._rate_ewma is None:
            return
        if loss_rate > self.loss_backoff_threshold:
            self._set_bwe(self._rate_ewma * (1.0 - loss_rate), now)
        elif owd_excess > self.delay_brake_s:
            # Queue building: hold below the delivered rate to drain it.
            self._set_bwe(min(self.bwe_bps, self._rate_ewma * 0.9), now)
        else:
            # Probe slightly above what is being delivered; the sender is
            # app-limited most of the time, so delivered ~= sent and the
            # probe factor is what discovers spare capacity.
            target = max(self._rate_ewma * self.headroom,
                         self.bwe_bps * self.probe_factor)
            self._set_bwe(min(target, self._rate_ewma * 2.0 + 100_000), now)

    def _observe_delay(self, message: FeedbackMessage) -> float:
        """Median one-way delay of this batch, relative to the floor."""
        if not message.reports:
            return 0.0
        owds = sorted(r.one_way_delay for r in message.reports)
        median = owds[len(owds) // 2]
        if self._owd_min is None or median < self._owd_min:
            self._owd_min = median
        return median - self._owd_min

    def _interval_loss(self, message: FeedbackMessage) -> float:
        # delivered + newly-lost denominator (see GccController: a
        # seq-span denominator misreads retransmission-heavy intervals).
        new_highest = message.highest_seq
        lost = message.cumulative_lost - self._last_cumulative_lost
        self._last_seen_highest = max(self._last_seen_highest, new_highest)
        self._last_cumulative_lost = message.cumulative_lost
        accounted = len(message.reports) + max(lost, 0)
        if accounted <= 0:
            return 0.0
        return min(max(lost / accounted, 0.0), 1.0)
