"""Copa-style delay-based congestion controller.

The paper's queue estimator is "inspired by Copa" (§4.1), and Copa is
cited among the low-latency CCAs whose conservatism creates the
headroom ACE exploits. This controller brings that family into the
registry so ACE can be evaluated over a third CCA besides GCC/BBR.

Core Copa idea (Arun & Balakrishnan, NSDI'18), adapted to the
rate-based RTC sender: maintain a target rate

    rate = delta_inverse / queueing_delay

where queueing delay is the standing RTT above the minimum. When the
current rate is below target, increase; above, decrease — with velocity
doubling on consecutive same-direction moves. ``1/delta`` expresses the
latency-throughput tradeoff (larger = more aggressive).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.transport.cc.base import CongestionController
from repro.transport.feedback import FeedbackMessage


class CopaController(CongestionController):
    """Rate-based Copa: chase delta_inverse / standing-queue-delay."""

    def __init__(self, initial_bwe_bps: float = 2_000_000.0,
                 delta: float = 0.5, standing_window_s: float = 0.2,
                 packet_bits: float = 1200 * 8, **kwargs) -> None:
        super().__init__(initial_bwe_bps=initial_bwe_bps, **kwargs)
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self.standing_window_s = standing_window_s
        self.packet_bits = packet_bits
        self._recent_rtts: Deque[tuple[float, float]] = deque()
        self._velocity = 1.0
        self._last_direction = 0
        self._reverse_delay = 0.0
        self._last_cumulative_lost = 0

    def observe_reverse_delay(self, reverse_delay: float) -> None:
        """The pipeline reports the (known) feedback-path delay."""
        self._reverse_delay = reverse_delay

    # ------------------------------------------------------------------
    def on_feedback(self, message: FeedbackMessage, now: float) -> None:
        # Loss backoff: Copa is delay-led, but sustained loss (a shallow
        # buffer hiding the delay signal) still demands a cut.
        lost = message.cumulative_lost - self._last_cumulative_lost
        self._last_cumulative_lost = message.cumulative_lost
        accounted = len(message.reports) + max(lost, 0)
        if accounted > 0 and lost / accounted > 0.05:
            self._velocity = 1.0
            self._last_direction = -1
            self._set_bwe(self.bwe_bps * (1.0 - lost / accounted), now)
        for report in message.reports:
            rtt = report.one_way_delay + self._reverse_delay
            if rtt <= 0:
                continue
            self.observe_rtt(rtt)
            self._recent_rtts.append((report.arrival_time, rtt))
        horizon = now - self.standing_window_s
        while self._recent_rtts and self._recent_rtts[0][0] < horizon:
            self._recent_rtts.popleft()
        if not self._recent_rtts or self.rtt_min is None:
            return
        standing = min(rtt for _, rtt in self._recent_rtts)
        queue_delay = max(standing - self.rtt_min, 1e-4)
        target = (self.packet_bits / self.delta) / queue_delay
        self._steer_toward(target, now)

    def _steer_toward(self, target_bps: float, now: float) -> None:
        rtt = self.rtt_last if self.rtt_last else 0.05
        # per-feedback step ~ velocity packets per RTT
        step = self._velocity * self.packet_bits / rtt * 0.05
        direction = 1 if self.bwe_bps < target_bps else -1
        if direction == self._last_direction:
            self._velocity = min(self._velocity * 2.0, 32.0)
        else:
            self._velocity = 1.0
        self._last_direction = direction
        self._set_bwe(self.bwe_bps + direction * step, now)

    @property
    def velocity(self) -> float:
        return self._velocity
