"""Congestion controller interface.

The controllers run at the sender, consume transport feedback, and
expose a bandwidth estimate (BWE). As the paper stresses, ACE is
orthogonal to the CCA: the CCA decides *how much* may be sent per RTT;
the pacer/ACE-N decide *when* within the RTT. The pipeline therefore
wires the BWE to both the encoder target bitrate and the pacer's token
rate, exactly as WebRTC does.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.transport.feedback import FeedbackMessage


@dataclass
class CcSample:
    """One (time, estimate) point — kept for the Fig. 9/20/21 benches."""

    time: float
    bwe_bps: float


class CongestionController(abc.ABC):
    """Base congestion controller with BWE history tracking."""

    def __init__(self, initial_bwe_bps: float = 2_000_000.0,
                 min_bwe_bps: float = 150_000.0,
                 max_bwe_bps: float = 500_000_000.0) -> None:
        self._bwe_bps = initial_bwe_bps
        self.min_bwe_bps = min_bwe_bps
        self.max_bwe_bps = max_bwe_bps
        self.history: list[CcSample] = []
        self.rtt_min: float | None = None
        self.rtt_last: float | None = None

    @property
    def bwe_bps(self) -> float:
        """Current bandwidth estimate in bits/second."""
        return self._bwe_bps

    def _set_bwe(self, value: float, now: float) -> None:
        self._bwe_bps = min(max(value, self.min_bwe_bps), self.max_bwe_bps)
        self.history.append(CcSample(now, self._bwe_bps))

    def observe_rtt(self, rtt: float) -> None:
        """Track RTT (the pipeline reports it from feedback round trips)."""
        self.rtt_last = rtt
        if self.rtt_min is None or rtt < self.rtt_min:
            self.rtt_min = rtt

    def observe_rtt_array(self, rtts) -> None:
        """Vectorized ``observe_rtt`` over a non-empty array of samples.

        Equivalent to calling :meth:`observe_rtt` per element in order:
        ``rtt_last`` ends at the final sample and ``rtt_min`` absorbs
        the minimum.
        """
        self.rtt_last = float(rtts[-1])
        low = float(rtts.min())
        if self.rtt_min is None or low < self.rtt_min:
            self.rtt_min = low

    @abc.abstractmethod
    def on_feedback(self, message: FeedbackMessage, now: float) -> None:
        """Consume one transport feedback message."""

    def target_bitrate_bps(self) -> float:
        """Encoder target derived from the BWE (WebRTC uses ~the BWE)."""
        return self._bwe_bps
