"""Google Congestion Control (GCC) — delay-trendline + loss controller.

A faithful-in-structure reimplementation of WebRTC's send-side GCC:

* Packets are grouped into bursts by send time; each feedback batch
  yields inter-group one-way-delay deltas.
* A trendline estimator regresses smoothed accumulated delay against
  arrival time over a window; the slope, scaled by a gain, is compared
  with an adaptive threshold (overuse detector) to classify the network
  as underusing / normal / overusing.
* An AIMD rate controller multiplicatively backs off on overuse and
  additively (near-multiplicatively) probes upward otherwise.
* A loss-based controller caps the delay-based estimate: >10% loss
  halves in, <2% allows growth (classic GCC thresholds).

The paper's §5.2 notes that ACE's bursts reduce the number of packet
*groups*, so it replaces the fixed-count trendline window with a
200 ms time window; this implementation supports both (``window_ms``
with ``time_windowed=True`` reproduces the ACE modification).
"""

from __future__ import annotations

import math
import operator
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.transport.cc.base import CongestionController
from repro.transport.feedback import (FeedbackMessage, PacketReport,
                                      ReportBatch)

#: Packets sent within this gap belong to the same packet group (WebRTC
#: uses a 5 ms burst window).
GROUP_WINDOW_S = 0.005

#: C-level sort key for the per-feedback report sort (hot path).
_by_send_time = operator.attrgetter("send_time")


@dataclass(slots=True)
class _PacketGroup:
    first_send: float
    last_send: float
    first_arrival: float
    last_arrival: float
    size_bytes: int

    def absorb(self, report: PacketReport) -> None:
        send_time = report.send_time
        if send_time > self.last_send:
            self.last_send = send_time
        arrival_time = report.arrival_time
        if arrival_time > self.last_arrival:
            self.last_arrival = arrival_time
        self.size_bytes += report.size_bytes


class TrendlineEstimator:
    """Linear-regression slope of smoothed delay over a window."""

    def __init__(self, window_size: int = 40, window_ms: float = 200.0,
                 time_windowed: bool = False, smoothing: float = 0.9) -> None:
        self.window_size = window_size
        self.window_s = window_ms / 1000.0
        self.time_windowed = time_windowed
        self.smoothing = smoothing
        self._samples: Deque[tuple[float, float]] = deque()
        self._accumulated = 0.0
        self._smoothed = 0.0
        self._first_arrival: Optional[float] = None

    def update(self, delay_delta: float, arrival_time: float) -> Optional[float]:
        """Feed one inter-group delay delta; return the current slope."""
        if self._first_arrival is None:
            self._first_arrival = arrival_time
        self._accumulated += delay_delta
        self._smoothed = (self.smoothing * self._smoothed
                          + (1 - self.smoothing) * self._accumulated)
        self._samples.append((arrival_time - self._first_arrival, self._smoothed))
        if self.time_windowed:
            horizon = arrival_time - self._first_arrival - self.window_s
            while self._samples and self._samples[0][0] < horizon:
                self._samples.popleft()
        else:
            while len(self._samples) > self.window_size:
                self._samples.popleft()
        return self.slope()

    def slope(self) -> Optional[float]:
        n = len(self._samples)
        if n < 2:
            return None
        # Single-object iteration; accumulation order matches the
        # previous sum()-based version exactly (left to right).
        sum_x = 0.0
        sum_y = 0.0
        for x, y in self._samples:
            sum_x += x
            sum_y += y
        mean_x = sum_x / n
        mean_y = sum_y / n
        var_x = 0.0
        cov = 0.0
        for x, y in self._samples:
            dx = x - mean_x
            var_x += dx ** 2
            cov += dx * (y - mean_y)
        if var_x <= 1e-12:
            return None
        return cov / var_x


class OveruseDetector:
    """Adaptive-threshold comparator over the trendline signal.

    Constants follow WebRTC's overuse detector: the modified trend
    (slope x gain x sample count, dimensionless axes) is compared to a
    threshold starting at 12.5 that adapts between 6 and 600. A clean
    network produces |modified trend| well under 1; a queue ramp of tens
    of ms per second pushes it past the threshold.
    """

    def __init__(self, initial_threshold: float = 12.5,
                 k_up: float = 0.0087, k_down: float = 0.039,
                 overuse_time: float = 0.01) -> None:
        self.threshold = initial_threshold
        self.k_up = k_up
        self.k_down = k_down
        self.overuse_time = overuse_time
        self._overusing_since: Optional[float] = None
        self._last_update: Optional[float] = None

    def detect(self, modified_trend: float, now: float) -> str:
        """Classify as 'overuse' / 'underuse' / 'normal', adapting threshold."""
        state = "normal"
        if modified_trend > self.threshold:
            if self._overusing_since is None:
                self._overusing_since = now
            if now - self._overusing_since >= self.overuse_time:
                state = "overuse"
        else:
            self._overusing_since = None
            if modified_trend < -self.threshold:
                state = "underuse"
        self._adapt(modified_trend, now)
        return state

    def _adapt(self, modified_trend: float, now: float) -> None:
        if self._last_update is None:
            self._last_update = now
            return
        dt = min(now - self._last_update, 0.1)
        self._last_update = now
        k = self.k_down if abs(modified_trend) < self.threshold else self.k_up
        self.threshold += k * (abs(modified_trend) - self.threshold) * dt
        self.threshold = min(max(self.threshold, 6.0), 600.0)


class GccController(CongestionController):
    """Send-side GCC: delay-based AIMD capped by a loss controller."""

    def __init__(self, initial_bwe_bps: float = 2_000_000.0,
                 time_windowed_trendline: bool = False,
                 trendline_gain: float = 4.0,
                 beta: float = 0.85, increase_factor: float = 1.04,
                 **kwargs) -> None:
        super().__init__(initial_bwe_bps=initial_bwe_bps, **kwargs)
        self.trendline = TrendlineEstimator(time_windowed=time_windowed_trendline)
        self.detector = OveruseDetector()
        self.trendline_gain = trendline_gain
        self.beta = beta
        self.increase_factor = increase_factor
        self._current_group: Optional[_PacketGroup] = None
        self._prev_group: Optional[_PacketGroup] = None
        self._state = "increase"
        self._last_seen_highest = -1
        self._last_cumulative_lost = 0
        self._last_decrease_at: Optional[float] = None
        self._last_loss_decrease_at: Optional[float] = None
        #: loss-based ceiling on the estimate (None = inactive).
        self._loss_limit: Optional[float] = None
        #: acked rate at the most recent overuse decrease — GCC's "link
        #: capacity" hint separating the multiplicative-growth region
        #: from careful additive probing near the known trouble zone.
        self._capacity_hint: Optional[float] = None
        #: recent acked throughput (bps), EWMA — bounds increases.
        self._acked_rate: Optional[float] = None
        self._last_feedback_at: Optional[float] = None

    # ------------------------------------------------------------------
    # feedback processing
    # ------------------------------------------------------------------
    def on_feedback(self, message: FeedbackMessage, now: float) -> None:
        self._update_acked_rate(message, now)
        loss_rate = self._interval_loss_rate(message)
        signal = self._delay_signal(message, now)
        self._apply_delay_control(signal, now)
        self._apply_loss_control(loss_rate, now)
        self._last_feedback_at = now

    def _update_acked_rate(self, message: FeedbackMessage, now: float) -> None:
        if self._last_feedback_at is None or not message.reports:
            return
        interval = max(now - self._last_feedback_at, 1e-3)
        rate = message.received_bytes * 8 / interval
        if self._acked_rate is None:
            self._acked_rate = rate
        else:
            # WebRTC's acknowledged-bitrate estimator smooths over
            # hundreds of ms; a twitchier average reads the lull between
            # frame bursts as a rate collapse and makes every overuse
            # decrease (beta x acked) cut far too deep for bursty senders.
            self._acked_rate = 0.15 * rate + 0.85 * self._acked_rate

    def _interval_loss_rate(self, message: FeedbackMessage) -> float:
        """Fraction lost of the packets accounted in this interval.

        The denominator is delivered + newly-lost (not a sequence-number
        span): during retransmission-heavy episodes most arrivals are
        RTX packets outside the original sequence space, and a
        span-based denominator reads a handful of fresh losses as ~100%
        loss — halving the estimate into the floor.
        """
        new_highest = message.highest_seq
        lost = message.cumulative_lost - self._last_cumulative_lost
        self._last_seen_highest = max(self._last_seen_highest, new_highest)
        self._last_cumulative_lost = message.cumulative_lost
        accounted = len(message.reports) + max(lost, 0)
        if accounted <= 0:
            return 0.0
        return min(max(lost / accounted, 0.0), 1.0)

    def _delay_signal(self, message: FeedbackMessage, now: float) -> Optional[str]:
        """Group packets and run the trendline/overuse machinery."""
        reports = message.reports
        if type(reports) is ReportBatch:
            return self._delay_signal_arrays(reports, now)
        state: Optional[str] = None
        for report in sorted(reports, key=_by_send_time):
            group_complete = self._feed_group(report)
            if group_complete is None:
                continue
            prev, cur = group_complete
            # WebRTC's arrival-time filter uses the *first* packet of
            # each packet group (§5.2 of the paper) — the head of a burst
            # sees only the pre-existing queue, not the queue the burst
            # itself builds, so self-inflicted intra-frame queueing does
            # not read as congestion.
            send_delta = cur.first_send - prev.first_send
            arrival_delta = cur.first_arrival - prev.first_arrival
            delay_delta = arrival_delta - send_delta
            slope = self.trendline.update(delay_delta, cur.first_arrival)
            if slope is None:
                continue
            # WebRTC scaling: slope x gain x sample count (capped at 60).
            # The time-windowed variant (the paper's §5.2 fix) scales by
            # the window's *duration* expressed in nominal 5 ms groups:
            # bursty senders produce few groups, and a count-based
            # confidence term would leave the detector permanently
            # unconfident — the exact unresponsiveness the fix targets.
            if self.trendline.time_windowed:
                scale = min(60.0, self.trendline.window_s / GROUP_WINDOW_S)
            else:
                scale = min(len(self.trendline._samples), 60)
            modified = slope * self.trendline_gain * scale
            state = self.detector.detect(modified, now)
        return state

    def _delay_signal_arrays(self, reports: ReportBatch,
                             now: float) -> Optional[str]:
        """Column-oriented twin of the scalar grouping loop.

        Produces the same group boundaries, absorb results, and
        trendline/detector call sequence as feeding the materialized
        reports through ``_feed_group`` one at a time: groups are runs
        found with ``searchsorted`` on the same ``send - first_send``
        comparison the scalar path evaluates, and ``_current_group`` /
        ``_prev_group`` carry across messages exactly as before.
        """
        n = len(reports)
        if n == 0:
            return None
        s = reports.send_times
        a = reports.arrival_times
        sz = reports.sizes
        # Batch-engine chunks arrive in send order, so the stable argsort
        # is the identity almost always — skip the three fancy-index
        # copies unless an inversion actually exists.
        if n > 1 and bool((s[1:] < s[:-1]).any()):
            order = np.argsort(s, kind="stable")
            s = s[order]
            a = a[order]
            sz = sz[order]
        cur = self._current_group
        i = 0
        if cur is not None and float(s[0]) - cur.first_send <= GROUP_WINDOW_S:
            # Absorb the run that continues the carried group in one shot.
            deltas = s - cur.first_send
            i = int(np.searchsorted(deltas, GROUP_WINDOW_S, side="right"))
            last_send = float(s[i - 1])
            if last_send > cur.last_send:
                cur.last_send = last_send
            last_arrival = float(a[:i].max())
            if last_arrival > cur.last_arrival:
                cur.last_arrival = last_arrival
            cur.size_bytes += int(sz[:i].sum())
            if i == n:
                return None
        # Pass 1: group-start boundaries (the same send - first_send
        # comparison the scalar path evaluates, one searchsorted per
        # group). Pass 2: one reduceat per column replaces the
        # per-group slice reductions.
        starts: list[int] = []
        while i < n:
            starts.append(i)
            deltas = s[i:] - s[i]
            i += int(np.searchsorted(deltas, GROUP_WINDOW_S, side="right"))
        sb = np.array(starts)
        first_sends = s[sb].tolist()
        first_arrivals = a[sb].tolist()
        last_arrivals = np.maximum.reduceat(a, sb).tolist()
        group_sizes = np.add.reduceat(sz, sb).tolist()
        ends = np.array(starts[1:] + [n])
        last_sends = s[ends - 1].tolist()
        state: Optional[str] = None
        trendline = self.trendline
        time_windowed = trendline.time_windowed
        detector = self.detector
        gain = self.trendline_gain
        for k in range(len(starts)):
            completed = cur
            cur = _PacketGroup(first_sends[k], last_sends[k],
                               first_arrivals[k], last_arrivals[k],
                               int(group_sizes[k]))
            if completed is None:
                continue
            prev = self._prev_group
            self._prev_group = completed
            if prev is None:
                continue
            send_delta = completed.first_send - prev.first_send
            arrival_delta = completed.first_arrival - prev.first_arrival
            slope = trendline.update(
                arrival_delta - send_delta, completed.first_arrival)
            if slope is None:
                continue
            if time_windowed:
                scale = min(60.0, trendline.window_s / GROUP_WINDOW_S)
            else:
                scale = min(len(trendline._samples), 60)
            state = detector.detect(slope * gain * scale, now)
        self._current_group = cur
        return state

    def _feed_group(self, report: PacketReport):
        """Assign a report to a packet group; return (prev, completed) pairs."""
        if self._current_group is None:
            self._current_group = _PacketGroup(
                report.send_time, report.send_time,
                report.arrival_time, report.arrival_time, report.size_bytes)
            return None
        if report.send_time - self._current_group.first_send <= GROUP_WINDOW_S:
            self._current_group.absorb(report)
            return None
        completed = self._current_group
        self._current_group = _PacketGroup(
            report.send_time, report.send_time,
            report.arrival_time, report.arrival_time, report.size_bytes)
        prev = self._prev_group
        self._prev_group = completed
        if prev is None:
            return None
        return (prev, completed)

    # ------------------------------------------------------------------
    # rate control
    # ------------------------------------------------------------------
    def _apply_delay_control(self, signal: Optional[str], now: float) -> None:
        if signal == "overuse":
            self._state = "decrease"
        elif signal == "underuse":
            self._state = "hold"
        elif signal == "normal":
            self._state = "increase"
        if signal is None and self._state != "increase":
            return

        bwe = self.bwe_bps
        if self._state == "decrease":
            base = self._acked_rate if self._acked_rate is not None else bwe
            new_bwe = self.beta * base
            if self._acked_rate is not None:
                self._capacity_hint = self._acked_rate
            if new_bwe < bwe:
                self._set_bwe(new_bwe, now)
            self._last_decrease_at = now
            self._state = "hold"
        elif self._state == "increase":
            near_max = (self._capacity_hint is not None
                        and bwe > 0.9 * self._capacity_hint)
            if near_max:
                # Additive probing near the known capacity: roughly one
                # MTU-sized packet of extra rate per response time.
                rtt = self.rtt_last if self.rtt_last else 0.05
                response_time = max(rtt + 0.1, 0.15)
                new_bwe = bwe + 1200 * 8 / response_time * 0.05
            else:
                new_bwe = bwe * self.increase_factor
            # GCC never grows far beyond what is actually being delivered.
            if self._acked_rate is not None:
                new_bwe = min(new_bwe, 1.5 * self._acked_rate + 10_000)
            if new_bwe > bwe:
                self._set_bwe(new_bwe, now)

    def _apply_loss_control(self, loss_rate: float, now: float) -> None:
        """Loss-based *bound* on the estimate (WebRTC-style).

        Rather than an event that multiplicatively cuts the estimate
        (which either compounds into a floor-crash if applied per
        feedback, or loses to additive growth if rate-limited), heavy
        loss installs a ceiling anchored at the *delivered* rate; light
        loss slowly releases it. The estimate is min(delay-based,
        loss-based) — sustained loss therefore caps the flow at what the
        network actually carries for it.
        """
        if loss_rate > 0.10 and self._acked_rate is not None:
            candidate = (1.0 - 0.5 * loss_rate) * self._acked_rate
            if self._loss_limit is None:
                self._loss_limit = candidate
            else:
                # follow the anchor (delivered rate), don't compound
                self._loss_limit = min(self._loss_limit * 1.005, candidate) \
                    if candidate < self._loss_limit else \
                    0.5 * self._loss_limit + 0.5 * candidate
        elif loss_rate < 0.05 and self._loss_limit is not None:
            # Release once loss is clearly below the install threshold —
            # e.g. a few percent of *random* wireless loss must not pin
            # the ceiling forever.
            self._loss_limit *= 1.05
            if self._loss_limit > self.max_bwe_bps:
                self._loss_limit = None
        if self._loss_limit is not None and self.bwe_bps > self._loss_limit:
            self._set_bwe(self._loss_limit, now)
