"""Simplified BBR controller (WebRTC legacy-codebase flavour).

The paper evaluates ACE over WebRTC's legacy BBR as well as GCC
(Fig. 21). This model keeps BBR's essential machinery: a windowed-max
delivery-rate filter for bottleneck bandwidth, a windowed-min RTT
filter, and the ProbeBW gain cycle that alternately probes above the
estimate and drains the queue it created.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.transport.cc.base import CongestionController
from repro.transport.feedback import FeedbackMessage

#: ProbeBW pacing-gain cycle (standard BBR).
PROBE_GAIN_CYCLE = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]


class BbrController(CongestionController):
    """Delivery-rate-max BBR with a ProbeBW gain cycle."""

    def __init__(self, initial_bwe_bps: float = 2_000_000.0,
                 bw_window_s: float = 10.0, cycle_interval_s: float = 0.2,
                 **kwargs) -> None:
        super().__init__(initial_bwe_bps=initial_bwe_bps, **kwargs)
        self.bw_window_s = bw_window_s
        self.cycle_interval_s = cycle_interval_s
        self._rate_samples: Deque[tuple[float, float]] = deque()
        self._last_feedback_at: Optional[float] = None
        self._cycle_index = 0
        self._cycle_started_at: Optional[float] = None
        self._startup = True

    @property
    def pacing_gain(self) -> float:
        if self._startup:
            return 2.0
        return PROBE_GAIN_CYCLE[self._cycle_index]

    def on_feedback(self, message: FeedbackMessage, now: float) -> None:
        self._advance_cycle(now)
        if self._last_feedback_at is not None and message.reports:
            interval = max(now - self._last_feedback_at, 1e-3)
            delivery_rate = message.received_bytes * 8 / interval
            self._rate_samples.append((now, delivery_rate))
        self._last_feedback_at = now
        horizon = now - self.bw_window_s
        while self._rate_samples and self._rate_samples[0][0] < horizon:
            self._rate_samples.popleft()
        if not self._rate_samples:
            return
        btl_bw = max(rate for _, rate in self._rate_samples)
        if self._startup and len(self._rate_samples) >= 8:
            recent = [rate for _, rate in list(self._rate_samples)[-4:]]
            older = [rate for _, rate in list(self._rate_samples)[-8:-4]]
            if max(recent) < 1.25 * max(older):
                self._startup = False  # bandwidth plateau -> leave startup
        self._set_bwe(btl_bw * self.pacing_gain, now)

    def _advance_cycle(self, now: float) -> None:
        if self._startup:
            return
        if self._cycle_started_at is None:
            self._cycle_started_at = now
            return
        if now - self._cycle_started_at >= self.cycle_interval_s:
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_GAIN_CYCLE)
            self._cycle_started_at = now
