"""Congestion control algorithms (GCC, BBR) used under the pacers."""

from repro.transport.cc.base import CongestionController
from repro.transport.cc.gcc import GccController
from repro.transport.cc.bbr import BbrController
from repro.transport.cc.copa import CopaController
from repro.transport.cc.delivery_rate import DeliveryRateController

__all__ = [
    "CongestionController",
    "GccController",
    "BbrController",
    "CopaController",
    "DeliveryRateController",
]
