"""Transport receiver: frame reassembly, jitter buffer, stall accounting.

Collects arriving packets, reassembles frames (waiting for
retransmissions of lost packets), displays frames in order after decode,
and produces the per-frame records from which every latency/stall/QoS
metric in the evaluation is computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import Packet, PacketType
from repro.transport.fec import FecDecoder

if TYPE_CHECKING:
    from repro.live.clock import Clock
from repro.transport.feedback import DEFAULT_FEEDBACK_INTERVAL_S, FeedbackBuilder, FeedbackMessage
from repro.transport.playout import PlayoutBuffer


@dataclass
class FrameRecord:
    """Receiver-side lifecycle of one video frame."""

    frame_id: int
    capture_time: float
    size_bytes: int = 0
    packet_count: int = 0
    packets_received: int = 0
    first_arrival: Optional[float] = None
    complete_at: Optional[float] = None
    displayed_at: Optional[float] = None
    quality_vmaf: float = 0.0
    had_retransmission: bool = False
    #: the sender's previously *sent* frame id (None if not signaled).
    prev_sent_frame_id: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.complete_at is not None

    @property
    def e2e_latency(self) -> Optional[float]:
        if self.displayed_at is None:
            return None
        return self.displayed_at - self.capture_time


class TransportReceiver:
    """Receiver endpoint of the RTC session.

    ``decode_time_fn`` supplies the decoder-model latency per frame
    (flat across complexity — the receiver never pays for ACE-C).

    ``loop`` is any :class:`~repro.live.clock.Clock` — the sim
    ``EventLoop`` or a live ``WallClock``; the receiver schedules only
    through the clock protocol (feedback cadence, skip timers).
    """

    def __init__(self, loop: "Clock",
                 send_feedback_fn: Callable[[FeedbackMessage], None],
                 decode_time_fn: Callable[[], float],
                 feedback_interval: float = DEFAULT_FEEDBACK_INTERVAL_S,
                 skip_timeout: float = 0.4,
                 playout_buffer: Optional["PlayoutBuffer"] = None,
                 telemetry=None) -> None:
        self.loop = loop
        #: optional :class:`repro.obs.Telemetry` for receiver-side span
        #: stages (arrival, reassembly-complete, display).
        self.telemetry = telemetry
        self.send_feedback_fn = send_feedback_fn
        self.decode_time_fn = decode_time_fn
        self.feedback_interval = feedback_interval
        #: give up on an incomplete frame once a newer complete frame has
        #: been stuck behind it this long — loss recovery has failed and
        #: a real player would resume from the next decodable frame.
        self.skip_timeout = skip_timeout
        self.feedback_builder = FeedbackBuilder()
        self.frames: dict[int, FrameRecord] = {}
        self.displayed: list[FrameRecord] = []
        self.skipped_frames = 0
        self._next_display_id = 0
        #: highest frame id ever marked complete (frames never lose
        #: completeness and are never dropped from ``frames``, so this
        #: makes _has_newer_complete O(1)).
        self._max_complete_id = -1
        self._blocked_since: float | None = None
        self._pli_pending = False
        self._started = False
        self._stopped = False
        self._feedback_handle = None
        #: FEC repair state (active as soon as parity packets arrive).
        self.fec = FecDecoder(on_repair=self._fec_repair)
        self._fec_meta: dict[int, tuple[int, int, int, int]] = {}
        #: optional NetEQ-style playout scheduling (None = display as
        #: soon as decoded, the paper's measurement mode).
        self.playout = playout_buffer
        #: set by the pipeline so quality can be attached to frame records
        self.frame_quality: dict[int, float] = {}
        self.frame_capture_time: dict[int, float] = {}

    def start(self) -> None:
        """Begin the periodic feedback timer."""
        if not self._started:
            self._started = True
            self._feedback_handle = self.loop.call_later(
                self.feedback_interval, self._feedback_tick,
                name="receiver.feedback")

    def stop(self) -> None:
        """Stop the feedback timer for good (live-session teardown).

        Without this the tick reschedules itself forever — invisible in
        the simulator (the loop halts at the horizon) and after a single
        ``asyncio.run`` session, but a per-session timer leak under a
        long-running multi-session supervisor. Never called on the sim
        path, so simulated sessions are untouched.
        """
        self._stopped = True
        if self._feedback_handle is not None:
            self._feedback_handle.cancel()
            self._feedback_handle = None

    # ------------------------------------------------------------------
    # packet arrival
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        """Handle a media, retransmitted, or FEC-parity packet arriving."""
        # fec_covers lives only on parity packets, which are always typed
        # PROBE; gating the getattr on ptype avoids a per-media-packet
        # AttributeError inside getattr (Packet is slotted).
        covers = (getattr(packet, "fec_covers", None)
                  if packet.ptype is PacketType.PROBE else None)
        if covers is not None:
            # Parity: report its arrival (it consumes bandwidth the CC
            # must see) and feed the repair machinery, but it is not
            # media — no frame bookkeeping.
            self.feedback_builder.on_packet(packet)
            self._fec_meta.update(getattr(packet, "fec_meta", {}))
            self.fec.on_parity(covers)
            return
        self.feedback_builder.on_packet(packet)
        if (packet.retransmission_of is None and packet.seq >= 0
                and packet.frame_id >= 0):
            self.fec.on_media(packet.seq)
        if packet.frame_id < 0:
            return
        record = self.frames.get(packet.frame_id)
        if record is None:
            record = FrameRecord(
                frame_id=packet.frame_id,
                capture_time=self.frame_capture_time.get(packet.frame_id, packet.t_arrival or 0.0),
                packet_count=packet.frame_packet_count,
                quality_vmaf=self.frame_quality.get(packet.frame_id, 0.0),
            )
            self.frames[packet.frame_id] = record
        if record.first_arrival is None:
            record.first_arrival = packet.t_arrival
            if self.telemetry is not None:
                arrival = packet.t_arrival
                self.telemetry.frame_stage(
                    packet.frame_id, "arrival_first",
                    at=self.loop.now if arrival is None else arrival)
        # prev_sent_frame_id is stamped only on a frame's first packet.
        prev_sent = (getattr(packet, "prev_sent_frame_id", None)
                     if packet.frame_packet_index == 0 else None)
        if prev_sent is not None:
            record.prev_sent_frame_id = prev_sent
            # Frames between prev_sent and this one were never sent
            # (sender-side drop): do not wait for them.
            if prev_sent < self._next_display_id <= packet.frame_id - 1:
                self.skipped_frames += packet.frame_id - self._next_display_id
                self._next_display_id = packet.frame_id
                self._blocked_since = None
        if packet.retransmission_of is not None:
            record.had_retransmission = True
        record.packets_received += 1
        record.size_bytes += packet.size_bytes
        if (not record.complete
                and record.packets_received >= record.packet_count):
            record.complete_at = self.loop.now
            if record.frame_id > self._max_complete_id:
                self._max_complete_id = record.frame_id
            if self.telemetry is not None:
                self.telemetry.frame_stage(record.frame_id, "complete")
            self._try_display()

    def on_media_chunk(self, frame_id: int, first_seq: int, index0: int,
                       packet_count: int, prev_sent_frame_id: Optional[int],
                       send_times, arrivals, sizes,
                       chunk_bytes: int) -> None:
        """Batch-engine arrival of a contiguous fresh-media packet train.

        Column-oriented twin of :meth:`on_packet` for never-retransmitted
        media packets of one frame, delivered in arrival order. The
        caller guarantees chronological delivery; this method moves the
        clock to the completing packet's arrival before display so
        ``complete_at``/``displayed_at`` match the reference path.
        """
        n = len(sizes)
        self.feedback_builder.on_chunk(
            first_seq, send_times, arrivals, sizes, frame_id)
        # No FEC bookkeeping: the batch engine only installs on sessions
        # without FEC, so no parity packet can ever reference these seqs.
        record = self.frames.get(frame_id)
        if record is None:
            record = FrameRecord(
                frame_id=frame_id,
                capture_time=self.frame_capture_time.get(
                    frame_id, float(arrivals[0])),
                packet_count=packet_count,
                quality_vmaf=self.frame_quality.get(frame_id, 0.0),
            )
            self.frames[frame_id] = record
        if record.first_arrival is None:
            record.first_arrival = float(arrivals[0])
        if index0 == 0 and prev_sent_frame_id is not None:
            record.prev_sent_frame_id = prev_sent_frame_id
            if prev_sent_frame_id < self._next_display_id <= frame_id - 1:
                self.skipped_frames += frame_id - self._next_display_id
                self._next_display_id = frame_id
                self._blocked_since = None
        prev_received = record.packets_received
        record.packets_received = prev_received + n
        record.size_bytes += chunk_bytes
        if (not record.complete
                and record.packets_received >= record.packet_count):
            completing = record.packet_count - prev_received - 1
            if completing >= n:
                completing = n - 1
            complete_at = float(arrivals[completing])
            self.loop.now = complete_at
            record.complete_at = complete_at
            if frame_id > self._max_complete_id:
                self._max_complete_id = frame_id
            self._try_display()

    def _try_display(self) -> None:
        """Display frames strictly in capture order once complete."""
        while True:
            record = self.frames.get(self._next_display_id)
            if record is None or not record.complete:
                # A complete newer frame waiting behind this hole starts
                # the skip clock; _skip_tick abandons the hole on expiry.
                if self._blocked_since is None and self._has_newer_complete():
                    self._blocked_since = self.loop.now
                    self.loop.call_later(self.skip_timeout, self._skip_tick,
                                         name="receiver.skip")
                return
            decode = self.decode_time_fn()
            display_at = self.loop.now + decode
            if self.playout is not None:
                display_at = self.playout.schedule(record.capture_time,
                                                   display_at)
            record.displayed_at = display_at
            if self.telemetry is not None:
                self.telemetry.frame_stage(record.frame_id, "displayed",
                                           at=display_at)
            self.displayed.append(record)
            self._next_display_id += 1
            self._blocked_since = None

    def _has_newer_complete(self) -> bool:
        return self._max_complete_id > self._next_display_id

    def _fec_repair(self, seq: int) -> None:
        """Reconstruct a lost media packet from parity and 'receive' it."""
        meta = self._fec_meta.get(seq)
        if meta is None:
            return
        frame_id, index, count, size = meta
        synthetic = Packet(
            size_bytes=size,
            seq=seq,
            frame_id=frame_id,
            frame_packet_index=index,
            frame_packet_count=count,
            retransmission_of=seq,  # suppresses pending NACKs for it
        )
        synthetic.t_leave_pacer = self.loop.now
        synthetic.t_arrival = self.loop.now
        self.feedback_builder.on_packet(synthetic)
        record = self.frames.get(frame_id)
        if record is None:
            record = FrameRecord(
                frame_id=frame_id,
                capture_time=self.frame_capture_time.get(frame_id, self.loop.now),
                packet_count=count,
                quality_vmaf=self.frame_quality.get(frame_id, 0.0),
            )
            self.frames[frame_id] = record
        record.packets_received += 1
        record.size_bytes += size
        if not record.complete and record.packets_received >= record.packet_count:
            record.complete_at = self.loop.now
            if frame_id > self._max_complete_id:
                self._max_complete_id = frame_id
            if self.telemetry is not None:
                self.telemetry.frame_stage(record.frame_id, "complete")
            self._try_display()

    def _skip_tick(self) -> None:
        if self._blocked_since is None:
            return
        if self.loop.now - self._blocked_since < self.skip_timeout - 1e-9:
            return
        record = self.frames.get(self._next_display_id)
        if record is None or not record.complete:
            self.skipped_frames += 1
            self._next_display_id += 1
            self._blocked_since = None
            # The reference chain is broken: ask for a decoder refresh.
            self._pli_pending = True
            self._try_display()

    def skip_frame(self, frame_id: int) -> None:
        """Advance past a frame the sender never produced (sim bookkeeping)."""
        if frame_id == self._next_display_id:
            self._next_display_id += 1
            self._try_display()

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def _feedback_tick(self) -> None:
        if self._stopped:
            return
        message = self.feedback_builder.build(self.loop.now)
        if self._pli_pending:
            message.pli_requested = True
            self._pli_pending = False
        self.send_feedback_fn(message)
        self._feedback_handle = self.loop.call_later(
            self.feedback_interval, self._feedback_tick,
            name="receiver.feedback")

    # ------------------------------------------------------------------
    # metrics views
    # ------------------------------------------------------------------
    def display_times(self) -> list[float]:
        return [r.displayed_at for r in self.displayed if r.displayed_at is not None]

    def completed_frames(self) -> list[FrameRecord]:
        return [r for r in self.frames.values() if r.complete]
