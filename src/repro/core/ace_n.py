"""ACE-N: burstiness-adaptive pacing controller (paper §4.1, Algorithm 1).

ACE-N governs the *bucket size* of a token-bucket pacer whose token rate
tracks the CCA's bandwidth estimate. The bucket size determines how
much of a frame may burst into the network at once:

* **Increase** (when the network can absorb more):
  - *Additive increase* while no history is available — probe the
    available buffer one step at a time.
  - *Fast recovery* once the estimated queue has drained — jump to
    ``min(bucket size last seen with an empty buffer,
    alpha * queue size just before the most recent loss)``.
  - *Application limit* — never grow the bucket beyond the previous
    frame's size (a bigger bucket than a frame buys nothing and only
    adds risk).
* **Decrease** (to protect the bottleneck buffer):
  - *Queue-size-triggered*: if the estimated queue exceeds the
    threshold ``T``, shrink the bucket by the excess.
  - *Packet-loss-triggered*: halve the bucket on loss.

The controller is deliberately separable from the pacer: it consumes
feedback/queue signals and emits bucket sizes, so it can be unit-tested
against synthetic signals and attached to any token-bucket pacer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.queue_estimator import QueueEstimator
from repro.net.packet import DEFAULT_PAYLOAD_BYTES
from repro.transport.feedback import FeedbackMessage


@dataclass
class AceNConfig:
    """Tunables of the ACE-N controller.

    ``threshold_packets`` is the paper's ``T`` (§6.5 sweeps 7.5, 10,
    12.5, 15 — not particularly sensitive; default 10). ``alpha`` is the
    conservative scaling of the pre-loss queue in fast recovery
    (0 < alpha < 1). ``additive_step_bytes`` is the per-update probe
    increment (one MTU-ish).
    """

    threshold_packets: float = 10.0
    packet_bytes: int = DEFAULT_PAYLOAD_BYTES
    alpha: float = 0.8
    #: conservative probing: one packet per update (fast recovery, not
    #: the additive step, does the heavy lifting after losses).
    additive_step_bytes: float = 1.0 * DEFAULT_PAYLOAD_BYTES
    min_bucket_bytes: float = 2.0 * DEFAULT_PAYLOAD_BYTES
    max_bucket_bytes: float = 2_000_000.0
    initial_bucket_bytes: float = 30_000.0
    #: at most one loss-triggered halving per this interval (an RTT-ish
    #: guard so one overflow episode, reported across several feedback
    #: batches, does not collapse the bucket to the floor).
    min_halve_interval_s: float = 0.06
    #: Per-halving decay of the "bucket last seen with an empty buffer"
    #: ratchet. The ratchet otherwise only grows, so after a capacity
    #: drop fast recovery would jump to a bucket from the old
    #: high-capacity regime; decaying it on each applied loss-halve
    #: forgets that regime geometrically (one loss still recovers to
    #: ~decay x the pre-loss level, sustained losses converge to the new
    #: regime). 0 < decay < 1.
    empty_ratchet_decay: float = 0.8
    #: Token-rate factor range for the burstiness level: with a healthy
    #: (large) bucket the pacer drains at up to ``max_rate_factor`` x BWE
    #: (WebRTC's CC stack paces at 2.5x the target for the same reason);
    #: as the bucket shrinks toward the floor the sending pattern decays
    #: to plain pacing at 1x BWE — the bursty->pacing switch of Fig. 25.
    min_rate_factor: float = 1.0
    max_rate_factor: float = 2.0
    #: bucket size (as a multiple of the frame budget) at which the rate
    #: factor saturates at its maximum.
    rate_factor_bucket_scale: float = 2.0

    @property
    def threshold_bytes(self) -> float:
        return self.threshold_packets * self.packet_bytes


@dataclass
class AceNDecision:
    """One bucket-size update, recorded for the deep-dive benches."""

    time: float
    bucket_bytes: float
    est_queue_bytes: float
    reason: str


class AceNController:
    """Adaptive bucket-size state machine (Algorithm 1)."""

    def __init__(self, config: Optional[AceNConfig] = None,
                 queue_estimator: Optional[QueueEstimator] = None) -> None:
        self.config = config or AceNConfig()
        self.queue_estimator = queue_estimator or QueueEstimator()
        self._bucket_bytes = self.config.initial_bucket_bytes
        #: bucket size last observed while the network buffer was empty.
        self._bucket_when_empty: Optional[float] = None
        #: estimated queue size just before the most recent packet loss.
        self._queue_before_loss: Optional[float] = None
        self._loss_outstanding = False
        self._last_frame_bytes: Optional[float] = None
        self._last_halve_at: Optional[float] = None
        self.decisions: list[AceNDecision] = []

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    @property
    def bucket_bytes(self) -> float:
        return self._bucket_bytes

    def rate_factor(self, frame_budget_bytes: float) -> float:
        """Burstiness level: token-rate multiple of the BWE.

        Interpolates between pacing (1x) and burst-mode drain (2.5x)
        according to how large the adapted bucket is relative to the
        per-frame budget — the bucket is ACE-N's measure of how much the
        network can currently absorb.
        """
        cfg = self.config
        scale = max(cfg.rate_factor_bucket_scale * frame_budget_bytes, 1.0)
        fraction = min(1.0, self._bucket_bytes / scale)
        return (cfg.min_rate_factor
                + (cfg.max_rate_factor - cfg.min_rate_factor) * fraction)

    def _set_bucket(self, value: float, now: float, est_queue: float,
                    reason: str) -> None:
        value = min(max(value, self.config.min_bucket_bytes),
                    self.config.max_bucket_bytes)
        self._bucket_bytes = value
        self.decisions.append(AceNDecision(now, value, est_queue, reason))

    # ------------------------------------------------------------------
    # signal ingestion
    # ------------------------------------------------------------------
    def on_feedback(self, message: FeedbackMessage, now: float,
                    reverse_delay: float = 0.0) -> None:
        """Feed transport feedback: update queue estimate, react to loss."""
        self.queue_estimator.on_feedback(message, now, reverse_delay=reverse_delay)
        est_queue = self.queue_estimator.queue_bytes(now)
        loss_detected = bool(message.nacked_seqs)
        if loss_detected:
            # The queue level that preceded the overflow is the *peak*
            # of the recent estimates — at drop time the buffer was full.
            peak = self.queue_estimator.peak_queue_bytes()
            self._queue_before_loss = max(peak, est_queue)
            self._loss_outstanding = True
            self._decrease_on_loss(now, est_queue)
            return
        self._decrease_on_queue(now, est_queue)
        self._increase(now, est_queue)

    def on_frame_enqueued(self, frame_bytes: float) -> None:
        """Record the latest frame size (drives the application limit)."""
        self._last_frame_bytes = frame_bytes

    # ------------------------------------------------------------------
    # Algorithm 1: Increase
    # ------------------------------------------------------------------
    def _increase(self, now: float, est_queue: float) -> None:
        cfg = self.config
        buffer_empty = self.queue_estimator.queue_is_empty()
        if buffer_empty:
            # Track the largest bucket that coexisted with an empty buffer.
            if (self._bucket_when_empty is None
                    or self._bucket_bytes > self._bucket_when_empty):
                self._bucket_when_empty = self._bucket_bytes

        if self._loss_outstanding:
            # Fast recovery fires once queued packets have cleared.
            if not buffer_empty:
                return
            candidates = []
            if self._bucket_when_empty is not None:
                candidates.append(self._bucket_when_empty)
            if self._queue_before_loss is not None:
                candidates.append(cfg.alpha * self._queue_before_loss)
            if candidates:
                target = min(candidates)
                self._loss_outstanding = False
                if target > self._bucket_bytes:
                    target = self._apply_application_limit(target)
                    self._set_bucket(target, now, est_queue, "fast-recovery")
                return
            self._loss_outstanding = False

        # Additive increase (no usable history, or recovering slowly).
        target = self._bucket_bytes + cfg.additive_step_bytes
        limited = self._apply_application_limit(target)
        if limited > self._bucket_bytes:
            self._set_bucket(limited, now, est_queue, "additive-increase")
        elif limited != target:
            self.decisions.append(
                AceNDecision(now, self._bucket_bytes, est_queue, "app-limit"))

    def _apply_application_limit(self, target: float) -> float:
        """No increase past the previous frame's size (§4.1)."""
        if self._last_frame_bytes is None:
            return target
        if target > self._last_frame_bytes:
            # "if the bucket size exceeds the previous frame's size, no
            # increase is applied" — keep the current bucket.
            return max(self._bucket_bytes,
                       min(target, self._last_frame_bytes))
        return target

    # ------------------------------------------------------------------
    # Algorithm 1: Decrease
    # ------------------------------------------------------------------
    def _decrease_on_queue(self, now: float, est_queue: float) -> None:
        threshold = self.config.threshold_bytes
        if est_queue > threshold:
            excess = est_queue - threshold
            self._set_bucket(self._bucket_bytes - excess, now, est_queue,
                             "queue-threshold")

    def _decrease_on_loss(self, now: float, est_queue: float) -> None:
        if (self._last_halve_at is not None
                and now - self._last_halve_at < self.config.min_halve_interval_s):
            return
        self._last_halve_at = now
        self._set_bucket(self._bucket_bytes / 2.0, now, est_queue, "loss-halve")
        # A loss is evidence the regime the empty-buffer ratchet was
        # learned in may no longer hold: decay it (never below the
        # post-halve bucket) so fast recovery cannot keep jumping to a
        # stale high-capacity value.
        if self._bucket_when_empty is not None:
            self._bucket_when_empty = max(
                self._bucket_bytes,
                self.config.empty_ratchet_decay * self._bucket_when_empty)
