"""Token bucket primitive used by the ACE-N pacer.

The paper deliberately reuses the classic token-bucket filter (§4.1,
"we do not propose any new token bucket design"): tokens accrue at
``rate_bps`` up to ``bucket_bytes``; a packet may be sent when the
bucket holds at least its size in tokens. The *bucket size* is the knob
ACE-N adapts — a large bucket lets a whole frame burst out, a small one
degenerates to plain pacing.

Tokens here are denominated in bytes (1 token = 1 byte) so bucket sizes
compare directly with frame and queue sizes.
"""

from __future__ import annotations

#: Tolerance (bytes) absorbing float rounding in refill arithmetic, so a
#: bucket that is short by 1e-10 bytes does not stall the pacer on a
#: sub-representable wait time.
EPSILON_BYTES = 1e-6


class TokenBucket:
    """Byte-denominated token bucket with lazy refill.

    The refill arithmetic is inlined into :meth:`consume` and
    :meth:`time_until_available` (the per-packet hot path) — keep any
    change to the formula mirrored across all copies, bit-for-bit, or
    fixed-seed sessions stop being reproducible.
    """

    __slots__ = ("_rate_bps", "_bucket_bytes", "_tokens", "_last_refill")

    def __init__(self, rate_bps: float, bucket_bytes: float,
                 initial_fill: float | None = None, now: float = 0.0) -> None:
        if rate_bps <= 0:
            raise ValueError("token rate must be positive")
        if bucket_bytes <= 0:
            raise ValueError("bucket size must be positive")
        self._rate_bps = rate_bps
        self._bucket_bytes = bucket_bytes
        self._tokens = bucket_bytes if initial_fill is None else min(initial_fill, bucket_bytes)
        self._last_refill = now

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    @property
    def rate_bps(self) -> float:
        return self._rate_bps

    def set_rate(self, rate_bps: float, now: float) -> None:
        """Change the token rate (refills at the old rate up to ``now`` first).

        Rejects non-positive rates exactly like the constructor — a
        silent floor here would let a miscomputed rate masquerade as a
        (glacial) 1 bps pacer instead of failing loudly.
        """
        if rate_bps <= 0:
            raise ValueError("token rate must be positive")
        self._refill(now)
        self._rate_bps = rate_bps

    @property
    def bucket_bytes(self) -> float:
        return self._bucket_bytes

    def set_bucket_size(self, bucket_bytes: float, now: float) -> None:
        """Resize the bucket; excess tokens spill (never negative)."""
        self._refill(now)
        self._bucket_bytes = max(bucket_bytes, 1.0)
        self._tokens = min(self._tokens, self._bucket_bytes)

    # ------------------------------------------------------------------
    # token accounting
    # ------------------------------------------------------------------
    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self._bucket_bytes,
                               self._tokens + elapsed * self._rate_bps / 8.0)
        self._last_refill = max(self._last_refill, now)

    def tokens(self, now: float) -> float:
        """Current token count in bytes."""
        self._refill(now)
        return self._tokens

    def can_send(self, size_bytes: float, now: float) -> bool:
        elapsed = now - self._last_refill
        if elapsed > 0:
            filled = self._tokens + elapsed * self._rate_bps / 8.0
            cap = self._bucket_bytes
            self._tokens = cap if filled > cap else filled
            self._last_refill = now
        return self._tokens >= size_bytes - EPSILON_BYTES

    def consume(self, size_bytes: float, now: float) -> bool:
        """Take ``size_bytes`` tokens if available; returns success."""
        elapsed = now - self._last_refill
        if elapsed > 0:
            filled = self._tokens + elapsed * self._rate_bps / 8.0
            cap = self._bucket_bytes
            self._tokens = cap if filled > cap else filled
            self._last_refill = now
        if self._tokens < size_bytes - EPSILON_BYTES:
            return False
        left = self._tokens - size_bytes
        self._tokens = left if left > 0.0 else 0.0
        return True

    def time_until_available(self, size_bytes: float, now: float) -> float:
        """Seconds until the bucket will hold ``size_bytes`` tokens.

        Infinite demand beyond the bucket size is clamped: a packet larger
        than the bucket waits until the bucket is full (callers should
        size buckets above the MTU).
        """
        elapsed = now - self._last_refill
        if elapsed > 0:
            filled = self._tokens + elapsed * self._rate_bps / 8.0
            cap = self._bucket_bytes
            self._tokens = cap if filled > cap else filled
            self._last_refill = now
        demand = size_bytes if size_bytes < self._bucket_bytes else self._bucket_bytes
        needed = demand - self._tokens
        if needed <= EPSILON_BYTES:
            return 0.0
        return needed * 8.0 / self._rate_bps
