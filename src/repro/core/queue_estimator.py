"""In-network queue estimation from RTT and PacketPair capacity.

ACE-N cannot see the bottleneck buffer; it infers it (§4.1): queueing
delay is the standing RTT above the minimum (the Copa-style estimator),
and queue *size* is that delay multiplied by the bottleneck capacity,
with capacity from the PacketPair algorithm.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.net.packet_pair import PacketPairEstimator
from repro.transport.feedback import FeedbackMessage, ReportBatch


@dataclass
class QueueEstimate:
    """One queue-size estimate with its ingredients (for the benches)."""

    time: float
    queue_bytes: float
    queue_delay: float
    capacity_bps: Optional[float]
    rtt_standing: Optional[float]
    rtt_min: Optional[float]


class QueueEstimator:
    """Tracks RTT_min / standing RTT and converts delay to queued bytes.

    One-way feedback only carries (send, arrival) pairs; adding the
    (known, fixed) reverse propagation gives an RTT-equivalent signal.
    The *standing* RTT is the minimum over a short recent window — robust
    to jitter while still tracking queue build-up (Copa's trick).
    """

    def __init__(self, standing_window_s: float = 0.1,
                 default_capacity_bps: float = 10_000_000.0) -> None:
        self.standing_window_s = standing_window_s
        self.default_capacity_bps = default_capacity_bps
        self.packet_pair = PacketPairEstimator()
        self._rtt_min: Optional[float] = None
        self._recent_rtts: Deque[tuple[float, float]] = deque()
        # Monotonic companions of _recent_rtts: _standing holds strictly
        # increasing rtts (front = window min), _peaks non-increasing
        # rtts (front = window max). min/max are order-exact, so the
        # O(1) queries return bit-identical values to a window scan.
        self._standing: Deque[tuple[float, float]] = deque()
        self._peaks: Deque[tuple[float, float]] = deque()
        self.estimates: list[QueueEstimate] = []

    # ------------------------------------------------------------------
    # signal ingestion
    # ------------------------------------------------------------------
    def on_feedback(self, message: FeedbackMessage, now: float,
                    reverse_delay: float = 0.0) -> None:
        """Feed a transport feedback batch (reports in arrival order)."""
        # The receiver appends reports as packets arrive, so the batch is
        # already sorted by arrival time — no re-sort needed.
        reports = message.reports
        if type(reports) is ReportBatch:
            self._on_feedback_arrays(reports, now, reverse_delay)
            return
        rtt_min = self._rtt_min
        recent = self._recent_rtts
        standing = self._standing
        peaks = self._peaks
        pp_on_packet = self.packet_pair.on_packet
        for report in reports:
            arrival = report.arrival_time
            rtt = arrival - report.send_time + reverse_delay
            if rtt <= 0:
                continue
            if rtt_min is None or rtt < rtt_min:
                rtt_min = rtt
            recent.append((arrival, rtt))
            while standing and standing[-1][1] >= rtt:
                standing.pop()
            standing.append((arrival, rtt))
            while peaks and peaks[-1][1] <= rtt:
                peaks.pop()
            peaks.append((arrival, rtt))
            pp_on_packet(report.send_time, arrival, report.size_bytes)
        self._rtt_min = rtt_min
        self._trim(now - self.standing_window_s)

    def _trim(self, horizon: float) -> None:
        while self._recent_rtts and self._recent_rtts[0][0] < horizon:
            self._recent_rtts.popleft()
        while self._standing and self._standing[0][0] < horizon:
            self._standing.popleft()
        while self._peaks and self._peaks[0][0] < horizon:
            self._peaks.popleft()

    def _on_feedback_arrays(self, reports: ReportBatch, now: float,
                            reverse_delay: float) -> None:
        """Column-oriented twin of the scalar ingestion loop."""
        arrivals = reports.arrival_times
        if len(arrivals):
            rtts = arrivals - reports.send_times + reverse_delay
            low = float(rtts.min())
            sends = reports.send_times
            sizes = reports.sizes
            if low <= 0.0:
                # Rare: non-positive samples only appear with degenerate
                # timestamps; filter them exactly as the scalar loop does.
                mask = rtts > 0
                arrivals = arrivals[mask]
                rtts = rtts[mask]
                sends = sends[mask]
                sizes = sizes[mask]
                low = float(rtts.min()) if len(rtts) else 0.0
            if len(rtts):
                if self._rtt_min is None or low < self._rtt_min:
                    self._rtt_min = low
                arr_list = arrivals.tolist()
                rtt_list = rtts.tolist()
                self._recent_rtts.extend(zip(arr_list, rtt_list))
                # Batch-rebuild the monotonic deques. Sequential pushes
                # leave: old entries with value < batch-min (resp. >
                # batch-max), then the strict suffix-minima (maxima) of
                # the new samples — same contents, O(survivors) appends.
                n = len(rtts)
                rev = rtts[::-1]
                sfx_min = np.minimum.accumulate(rev)[::-1]
                sfx_max = np.maximum.accumulate(rev)[::-1]
                high = float(sfx_max[0])
                standing = self._standing
                while standing and standing[-1][1] >= low:
                    standing.pop()
                keep = np.empty(n, dtype=bool)
                keep[-1] = True
                np.less(rtts[:-1], sfx_min[1:], out=keep[:-1])
                for i in np.nonzero(keep)[0].tolist():
                    standing.append((arr_list[i], rtt_list[i]))
                peaks = self._peaks
                while peaks and peaks[-1][1] <= high:
                    peaks.pop()
                keep[-1] = True
                np.greater(rtts[:-1], sfx_max[1:], out=keep[:-1])
                for i in np.nonzero(keep)[0].tolist():
                    peaks.append((arr_list[i], rtt_list[i]))
                self.packet_pair.on_packet_arrays(sends, arrivals, sizes)
        self._trim(now - self.standing_window_s)

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------
    @property
    def rtt_min(self) -> Optional[float]:
        return self._rtt_min

    def rtt_standing(self) -> Optional[float]:
        """Minimum RTT over the recent window (filters out jitter spikes)."""
        if not self._standing:
            return None
        return self._standing[0][1]

    def capacity_bps(self) -> float:
        """PacketPair capacity, falling back to a configured default."""
        cap = self.packet_pair.capacity_bps()
        return cap if cap is not None else self.default_capacity_bps

    def queue_delay(self) -> float:
        """Estimated queueing delay: standing RTT minus RTT_min."""
        standing = self.rtt_standing()
        if standing is None or self._rtt_min is None:
            return 0.0
        return max(0.0, standing - self._rtt_min)

    def queue_bytes(self, now: float) -> float:
        """Estimated in-network queue size in bytes (records history)."""
        delay = self.queue_delay()
        cap_raw = self.packet_pair.capacity_bps()
        capacity = cap_raw if cap_raw is not None else self.default_capacity_bps
        queue = delay * capacity / 8.0
        self.estimates.append(QueueEstimate(
            time=now, queue_bytes=queue, queue_delay=delay,
            capacity_bps=cap_raw,
            rtt_standing=self.rtt_standing(), rtt_min=self._rtt_min,
        ))
        return queue

    def peak_queue_bytes(self) -> float:
        """Peak queue estimate over the recent window (max RTT based).

        The standing (min-filtered) estimate deliberately ignores
        transient spikes; the *peak* is what matters when remembering the
        queue level that preceded a loss — at overflow time the queue was
        near the buffer limit, which only the max-RTT view captures.
        """
        if not self._peaks or self._rtt_min is None:
            return 0.0
        peak_rtt = self._peaks[0][1]
        delay = max(0.0, peak_rtt - self._rtt_min)
        return delay * self.capacity_bps() / 8.0

    def queue_is_empty(self) -> bool:
        """True when the standing RTT has returned to the propagation floor.

        Requires *evidence*: with no RTT samples in the recent window
        (feedback silence, or every sample aged out) the buffer state is
        unknown, not empty — answering True on silence would let ACE-N's
        fast recovery fire with zero signal.
        """
        standing = self.rtt_standing()
        if standing is None or self._rtt_min is None:
            return False
        # Within half a serialization-ish jitter margin of the floor.
        return (standing - self._rtt_min) < 0.002
