"""In-network queue estimation from RTT and PacketPair capacity.

ACE-N cannot see the bottleneck buffer; it infers it (§4.1): queueing
delay is the standing RTT above the minimum (the Copa-style estimator),
and queue *size* is that delay multiplied by the bottleneck capacity,
with capacity from the PacketPair algorithm.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.net.packet_pair import PacketPairEstimator
from repro.transport.feedback import FeedbackMessage


@dataclass
class QueueEstimate:
    """One queue-size estimate with its ingredients (for the benches)."""

    time: float
    queue_bytes: float
    queue_delay: float
    capacity_bps: Optional[float]
    rtt_standing: Optional[float]
    rtt_min: Optional[float]


class QueueEstimator:
    """Tracks RTT_min / standing RTT and converts delay to queued bytes.

    One-way feedback only carries (send, arrival) pairs; adding the
    (known, fixed) reverse propagation gives an RTT-equivalent signal.
    The *standing* RTT is the minimum over a short recent window — robust
    to jitter while still tracking queue build-up (Copa's trick).
    """

    def __init__(self, standing_window_s: float = 0.1,
                 default_capacity_bps: float = 10_000_000.0) -> None:
        self.standing_window_s = standing_window_s
        self.default_capacity_bps = default_capacity_bps
        self.packet_pair = PacketPairEstimator()
        self._rtt_min: Optional[float] = None
        self._recent_rtts: Deque[tuple[float, float]] = deque()
        self.estimates: list[QueueEstimate] = []

    # ------------------------------------------------------------------
    # signal ingestion
    # ------------------------------------------------------------------
    def on_feedback(self, message: FeedbackMessage, now: float,
                    reverse_delay: float = 0.0) -> None:
        """Feed a transport feedback batch (reports in arrival order)."""
        # The receiver appends reports as packets arrive, so the batch is
        # already sorted by arrival time — no re-sort needed.
        rtt_min = self._rtt_min
        recent = self._recent_rtts
        pp_on_packet = self.packet_pair.on_packet
        for report in message.reports:
            arrival = report.arrival_time
            rtt = arrival - report.send_time + reverse_delay
            if rtt <= 0:
                continue
            if rtt_min is None or rtt < rtt_min:
                rtt_min = rtt
            recent.append((arrival, rtt))
            pp_on_packet(report.send_time, arrival, report.size_bytes)
        self._rtt_min = rtt_min
        horizon = now - self.standing_window_s
        while self._recent_rtts and self._recent_rtts[0][0] < horizon:
            self._recent_rtts.popleft()

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------
    @property
    def rtt_min(self) -> Optional[float]:
        return self._rtt_min

    def rtt_standing(self) -> Optional[float]:
        """Minimum RTT over the recent window (filters out jitter spikes)."""
        if not self._recent_rtts:
            return None
        return min(rtt for _, rtt in self._recent_rtts)

    def capacity_bps(self) -> float:
        """PacketPair capacity, falling back to a configured default."""
        cap = self.packet_pair.capacity_bps()
        return cap if cap is not None else self.default_capacity_bps

    def queue_delay(self) -> float:
        """Estimated queueing delay: standing RTT minus RTT_min."""
        standing = self.rtt_standing()
        if standing is None or self._rtt_min is None:
            return 0.0
        return max(0.0, standing - self._rtt_min)

    def queue_bytes(self, now: float) -> float:
        """Estimated in-network queue size in bytes (records history)."""
        delay = self.queue_delay()
        cap_raw = self.packet_pair.capacity_bps()
        capacity = cap_raw if cap_raw is not None else self.default_capacity_bps
        queue = delay * capacity / 8.0
        self.estimates.append(QueueEstimate(
            time=now, queue_bytes=queue, queue_delay=delay,
            capacity_bps=cap_raw,
            rtt_standing=self.rtt_standing(), rtt_min=self._rtt_min,
        ))
        return queue

    def peak_queue_bytes(self) -> float:
        """Peak queue estimate over the recent window (max RTT based).

        The standing (min-filtered) estimate deliberately ignores
        transient spikes; the *peak* is what matters when remembering the
        queue level that preceded a loss — at overflow time the queue was
        near the buffer limit, which only the max-RTT view captures.
        """
        if not self._recent_rtts or self._rtt_min is None:
            return 0.0
        peak_rtt = max(rtt for _, rtt in self._recent_rtts)
        delay = max(0.0, peak_rtt - self._rtt_min)
        return delay * self.capacity_bps() / 8.0

    def queue_is_empty(self) -> bool:
        """True when the standing RTT has returned to the propagation floor.

        Requires *evidence*: with no RTT samples in the recent window
        (feedback silence, or every sample aged out) the buffer state is
        unknown, not empty — answering True on silence would let ACE-N's
        fast recovery fire with zero signal.
        """
        standing = self.rtt_standing()
        if standing is None or self._rtt_min is None:
            return False
        # Within half a serialization-ish jitter margin of the floor.
        return (standing - self._rtt_min) < 0.002
