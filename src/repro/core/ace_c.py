"""ACE-C: complexity-adaptive encoding controller (paper §4.2).

Before each frame is encoded, ACE-C:

1. predicts the frame's relative size rho-hat from the SATD against the
   previous frame (linear model: ``rho_hat = w * S / S_bar + offset``),
2. evaluates, for every complexity level ``c``, the latency gain of
   encoding at that level::

       Gain(c) = rho_hat * phi(c) / f  -  delta_Te(c)

   (frame-size reduction converted to transmission time at the per-frame
   budget implied by the BWE, minus the extra encoding time), and
3. picks the gain-maximizing level (c0 when no level has positive gain —
   which is the case for ~97% of frames; only oversized frames justify
   the extra encoding effort).

All learned quantities — ``w``, ``offset``, the per-level compression
factors ``phi(c)`` and encode-time deltas ``delta_Te(c)`` — start at
empirical values and are EWMA-updated (alpha = 0.5, Eq. 5) from the
actual outcome of every encoded frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class AceCConfig:
    """Tunables of ACE-C."""

    #: EWMA smoothing (Eq. 5; the paper sets alpha = 0.5).
    ewma_alpha: float = 0.5
    #: initial SATD->rho linear-model parameters.
    initial_w: float = 1.0
    initial_offset: float = 0.0
    #: initial per-level compression factors phi(c) (index-aligned).
    initial_phi: Sequence[float] = (0.0, 0.25, 0.38)
    #: initial per-level extra encode time over c0, seconds.
    initial_delta_te: Sequence[float] = (0.0, 0.003, 0.006)
    #: refuse levels whose predicted extra encode time would exceed this
    #: bound (practicality guard, §1 challenge (i)).
    max_extra_encode_time: float = 0.030
    #: only frames predicted oversized are considered for elevation —
    #: §4.2: "ACE-C selects only the oversized frames (less than 5%)";
    #: Fig. 17 shows elevation kicking in around 1.6x the average size.
    oversize_gate_rho: float = 1.6
    #: whether to update phi online from achieved sizes. Off by default:
    #: when the encoder's rate control hits whatever plan it is given,
    #: the achieved size reflects the plan (which already applied phi),
    #: not the codec's true compression gain — the online signal is
    #: circular. The paper's "empirical values" are the offline Fig. 4
    #: calibration, which the pipeline takes from the codec preset.
    update_phi: bool = False


@dataclass
class ComplexityDecision:
    """Outcome of one per-frame complexity selection."""

    frame_id: int
    level: int
    rho_hat: float
    gains: list[float]
    satd_ratio: float


class AceCController:
    """Per-frame complexity selector with online model updates."""

    def __init__(self, num_levels: int = 3, fps: float = 30.0,
                 config: Optional[AceCConfig] = None) -> None:
        if num_levels < 1:
            raise ValueError("need at least one complexity level")
        self.config = config or AceCConfig()
        self.num_levels = num_levels
        self.fps = fps
        self.w = self.config.initial_w
        self.offset = self.config.initial_offset
        self.phi = list(self.config.initial_phi[:num_levels])
        while len(self.phi) < num_levels:
            self.phi.append(self.phi[-1])
        self.delta_te = list(self.config.initial_delta_te[:num_levels])
        while len(self.delta_te) < num_levels:
            self.delta_te.append(self.delta_te[-1])
        self.decisions: list[ComplexityDecision] = []
        #: (rho_hat, rho_actual) pairs for the Fig. 19 accuracy bench.
        self.prediction_log: list[tuple[float, float]] = []
        self._pending: dict[int, ComplexityDecision] = {}
        #: per-level last observed c0-equivalent stats for phi updates.
        self._c0_time_ewma: Optional[float] = None

    # ------------------------------------------------------------------
    # prediction (Eq. 4)
    # ------------------------------------------------------------------
    def predict_rho(self, satd: float, satd_mean: float) -> float:
        """Predicted relative frame size rho-hat from the SATD ratio."""
        ratio = satd / max(satd_mean, 1e-9)
        return max(0.05, self.w * ratio + self.offset)

    # ------------------------------------------------------------------
    # gain maximization (Eq. 2)
    # ------------------------------------------------------------------
    def gain(self, level: int, rho_hat: float) -> float:
        """Gain(c) = rho_hat * phi(c) / f - delta_Te(c)."""
        return rho_hat * self.phi[level] / self.fps - self.delta_te[level]

    def select_complexity(self, frame_id: int, satd: float,
                          satd_mean: float,
                          backlogged: bool = False) -> ComplexityDecision:
        """Choose the complexity level for the next frame.

        ``backlogged`` signals that the pacer already holds a backlog —
        then the transmission-time saving of a smaller frame is realized
        even for average-sized frames, so the oversize gate is waived.
        """
        rho_hat = self.predict_rho(satd, satd_mean)
        gains = []
        for level in range(self.num_levels):
            if self.delta_te[level] > self.config.max_extra_encode_time:
                gains.append(float("-inf"))
            else:
                gains.append(self.gain(level, rho_hat))
        waived = backlogged and rho_hat >= 1.0
        if rho_hat >= self.config.oversize_gate_rho or waived:
            best = max(range(self.num_levels), key=lambda i: gains[i])
        else:
            # Not oversized and nothing queued: the size reduction would
            # not shorten any queueing, so the gain is illusory -> c0.
            best = 0
        # c0 has gain exactly 0; prefer it unless a level strictly wins.
        if gains[best] <= 0.0:
            best = 0
        decision = ComplexityDecision(
            frame_id=frame_id, level=best, rho_hat=rho_hat,
            gains=gains, satd_ratio=satd / max(satd_mean, 1e-9),
        )
        self.decisions.append(decision)
        self._pending[frame_id] = decision
        return decision

    # ------------------------------------------------------------------
    # online updates (Eq. 5)
    # ------------------------------------------------------------------
    def _ewma(self, old: float, new: float) -> float:
        a = self.config.ewma_alpha
        return a * new + (1 - a) * old

    def on_encoded(self, frame_id: int, actual_bytes: int,
                   target_frame_bytes: float, encode_time: float,
                   c0_plan_bytes: Optional[float] = None) -> None:
        """Update w/offset/phi/delta_Te from the frame's actual outcome.

        ``c0_plan_bytes`` is the rate control's pre-reduction plan for
        the frame — the size a base-complexity encode would have aimed
        at. The x264 integration exposes it (§5.1 plans the frame at c0
        first, then ACE scales the plan), and it is the unbiased
        reference for learning phi: comparing the achieved size against
        a prediction that itself used phi would be circular.
        """
        decision = self._pending.pop(frame_id, None)
        if decision is None or target_frame_bytes <= 0:
            return
        rho_actual = actual_bytes / target_frame_bytes
        level = decision.level

        if level == 0:
            # Base-level frames (the ~97% majority) are the ground truth
            # for the SATD->size model. The slope is estimated through
            # the origin (rho ~ w * ratio holds per frame up to noise),
            # which stays stable under heavy-tailed ratios where a
            # two-parameter moment fit would wander; the offset mops up
            # the small residual bias and is tightly bounded.
            self.prediction_log.append((decision.rho_hat, rho_actual))
            x, y = decision.satd_ratio, rho_actual
            if x > 1e-6:
                slope_obs = min(max((y - self.offset) / x, 0.1), 5.0)
                self.w = self._ewma(self.w, slope_obs)
            residual = y - (self.w * x + self.offset)
            offset_target = self.offset + 0.2 * residual
            self.offset = self._ewma(self.offset,
                                     min(max(offset_target, -0.5), 0.5))
            self._c0_time_ewma = (encode_time if self._c0_time_ewma is None
                                  else self._ewma(self._c0_time_ewma, encode_time))
        else:
            # Elevated frames: learn phi against the c0-equivalent
            # reference and delta_Te against the c0 encode-time EWMA.
            c0_rho = (c0_plan_bytes / target_frame_bytes
                      if c0_plan_bytes else decision.rho_hat)
            if self.config.update_phi and c0_rho > 1e-6:
                phi_obs = 1.0 - rho_actual / c0_rho
                phi_obs = min(max(phi_obs, 0.0), 0.9)
                self.phi[level] = self._ewma(self.phi[level], phi_obs)
            if self._c0_time_ewma is not None:
                extra = max(0.0, encode_time - self._c0_time_ewma)
                self.delta_te[level] = self._ewma(self.delta_te[level], extra)
            # The size model must also learn from these frames — fitting
            # w only on the sub-gate (small) frames selection-biases the
            # slope upward, which in turn widens the gate: a runaway.
            x = decision.satd_ratio
            if x > 1e-6 and c0_rho > 1e-6:
                slope_obs = min(max((c0_rho - self.offset) / x, 0.1), 5.0)
                self.w = self._ewma(self.w, slope_obs)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def fraction_elevated(self) -> float:
        """Fraction of frames encoded above c0 (paper: ~3%)."""
        if not self.decisions:
            return 0.0
        elevated = sum(1 for d in self.decisions if d.level > 0)
        return elevated / len(self.decisions)
