"""The paper's contribution: ACE dual burstiness control.

* :class:`AceNController` — burstiness-adaptive pacing (§4.1, Alg. 1):
  adapts the token-bucket size of a :class:`TokenBucketPacer` to the
  estimated in-network queue.
* :class:`AceCController` — complexity-adaptive encoding (§4.2): picks
  the per-frame encoder complexity maximizing the latency gain of
  trading encode time for frame-size reduction.
* :class:`QueueEstimator` — standing-RTT x PacketPair capacity queue
  estimation shared by ACE-N.
"""

from repro.core.token_bucket import TokenBucket
from repro.core.queue_estimator import QueueEstimator
from repro.core.ace_n import AceNConfig, AceNController
from repro.core.ace_c import AceCConfig, AceCController, ComplexityDecision

__all__ = [
    "TokenBucket",
    "QueueEstimator",
    "AceNConfig",
    "AceNController",
    "AceCConfig",
    "AceCController",
    "ComplexityDecision",
]
