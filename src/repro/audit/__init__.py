"""Runtime invariant auditing for simulated and live sessions.

``repro.audit`` attaches a :class:`~repro.audit.auditor.SessionAuditor`
to a running session through the event-loop observability hook
(:attr:`repro.sim.events.EventLoop.on_event`) — zero overhead when off —
and verifies, after every event, that the stack still satisfies the
conservation laws, state invariants and control-law conformance the
reproduction's claims rest on. See DESIGN.md ("Invariant auditing") for
the catalogue.

Entry points:

* ``repro run --check`` / ``REPRO_AUDIT=1`` — audit a sim session.
* ``repro fuzz`` — seeded random-scenario fuzzing under the auditor
  (:mod:`repro.audit.fuzz`), with shrinking to a minimal repro.
"""

from repro.audit.auditor import (InvariantViolation, SessionAuditor,
                                 Violation, attach_audit)

__all__ = ["InvariantViolation", "SessionAuditor", "Violation",
           "attach_audit"]
