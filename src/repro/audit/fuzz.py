"""Seeded random-scenario fuzzing under the invariant auditor.

Each fuzz *case* is a short simulated session whose workload — baseline,
trace class, path impairments, timing — is derived deterministically
from ``(root_seed, index)`` through the repo's named RNG streams, so any
failure reproduces from two integers. The harness runs every case with a
collecting :class:`~repro.audit.auditor.SessionAuditor` attached and, on
a violation, *shrinks* the case: it greedily re-runs simplified variants
(shorter, lossless, jitterless, constant-rate, ...) and keeps each
simplification that still fails, ending at a minimal reproducible case.

CLI::

    python -m repro fuzz --cases 20 --seed 1      # exit 1 on violation
    python -m repro fuzz --replay 1:7             # re-run one case
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.audit.auditor import SessionAuditor, Violation, attach_audit
from repro.net.trace import (
    BandwidthTrace,
    make_4g_trace,
    make_5g_trace,
    make_campus_wifi_trace,
    make_weak_network_trace,
    make_wifi_trace,
)
from repro.rtc.baselines import build_session
from repro.rtc.session import SessionConfig
from repro.sim.rng import RngStream

#: Baselines worth fuzzing: both ACE variants (the control laws under
#: test), the token-bucket extremes, and the frame-paced outlier.
FUZZ_BASELINES = ("ace", "ace-n", "webrtc-star", "always-burst", "salsify",
                  "always-pace")

FUZZ_TRACES = ("wifi", "4g", "5g", "campus", "const:2", "const:6",
               "weak:canteen", "weak:airport")

_TRACE_MAKERS = {
    "wifi": make_wifi_trace,
    "4g": make_4g_trace,
    "5g": make_5g_trace,
    "campus": make_campus_wifi_trace,
}


@dataclass(frozen=True)
class FuzzCase:
    """One randomized scenario, fully determined by its fields."""

    root_seed: int
    index: int
    baseline: str
    trace_kind: str
    duration: float
    base_rtt: float
    queue_capacity_bytes: int
    random_loss_rate: float
    contention_loss_rate: float
    delay_jitter_std: float
    cross_traffic: bool
    audio: bool

    @property
    def label(self) -> str:
        return f"{self.root_seed}:{self.index}"

    def describe(self) -> str:
        extras = []
        if self.random_loss_rate:
            extras.append(f"loss={self.random_loss_rate:.3f}")
        if self.contention_loss_rate:
            extras.append(f"contention={self.contention_loss_rate:.2f}")
        if self.delay_jitter_std:
            extras.append(f"jitter={self.delay_jitter_std * 1000:.1f}ms")
        if self.cross_traffic:
            extras.append("cross")
        if self.audio:
            extras.append("audio")
        tail = (", " + ", ".join(extras)) if extras else ""
        return (f"[{self.label}] {self.baseline} over {self.trace_kind} "
                f"({self.duration:.1f}s, rtt {self.base_rtt * 1000:.0f}ms, "
                f"queue {self.queue_capacity_bytes // 1000}KB{tail})")


def case_from_seed(root_seed: int, index: int) -> FuzzCase:
    """Derive case ``index`` of the ``root_seed`` fuzz run, stably."""
    rng = RngStream(root_seed, f"audit.fuzz.{index}")
    baseline = str(rng.choice(FUZZ_BASELINES))
    trace_kind = str(rng.choice(FUZZ_TRACES))
    # Short sessions: the invariants are per-event, so violations show up
    # within a few seconds of simulated time; breadth beats depth.
    duration = round(rng.uniform(1.5, 4.0), 2)
    base_rtt = float(rng.choice((0.01, 0.03, 0.08, 0.16)))
    queue = int(rng.choice((25_000, 100_000, 400_000)))
    loss = float(rng.choice((0.0, 0.0, 0.01, 0.05)))
    contention = float(rng.choice((0.0, 0.0, 0.0, 0.3)))
    jitter = float(rng.choice((0.0, 0.0, 0.001, 0.003)))
    cross = bool(rng.random() < 0.25)
    audio = bool(rng.random() < 0.25)
    return FuzzCase(
        root_seed=root_seed, index=index, baseline=baseline,
        trace_kind=trace_kind, duration=duration, base_rtt=base_rtt,
        queue_capacity_bytes=queue, random_loss_rate=loss,
        contention_loss_rate=contention, delay_jitter_std=jitter,
        cross_traffic=cross, audio=audio,
    )


def build_case_trace(case: FuzzCase) -> BandwidthTrace:
    kind = case.trace_kind
    trace_duration = case.duration + 5.0
    if kind.startswith("const:"):
        mbps = float(kind.split(":", 1)[1])
        return BandwidthTrace.constant(mbps * 1e6, duration=trace_duration)
    rng = RngStream(case.root_seed, f"audit.fuzz.trace.{case.index}.{kind}")
    if kind.startswith("weak:"):
        return make_weak_network_trace(rng, duration=trace_duration,
                                       venue=kind.split(":", 1)[1])
    return _TRACE_MAKERS[kind](rng, duration=trace_duration)


def run_case(case: FuzzCase,
             max_violations: int = 20) -> Tuple[List[Violation], int]:
    """Run one case under a collecting auditor.

    The session runs with flight-recorder-only telemetry (the full event
    log is not kept — fuzzing runs thousands of frames), so every
    violation carries a :attr:`Violation.flight_dump` of the records
    leading up to it. Returns ``(violations, events_checked)``.
    """
    from repro.obs import Telemetry

    config = SessionConfig(
        duration=case.duration,
        seed=case.root_seed * 1_000_003 + case.index,
        base_rtt=case.base_rtt,
        queue_capacity_bytes=case.queue_capacity_bytes,
        random_loss_rate=case.random_loss_rate,
        contention_loss_rate=case.contention_loss_rate,
        delay_jitter_std=case.delay_jitter_std,
        cross_traffic=case.cross_traffic,
        audio=case.audio,
    )
    session = build_session(case.baseline, build_case_trace(case), config)
    session.enable_telemetry(Telemetry(keep_events=False))
    auditor = attach_audit(session, strict=False,
                           max_violations=max_violations)
    session.run()
    return auditor.finalize(), auditor.events_checked


#: Greedy shrink moves, most-simplifying first. Each is kept only if the
#: simplified case still fails.
_SHRINK_MOVES: Tuple[Tuple[str, dict], ...] = (
    ("shorten to 1.5s", {"duration": 1.5}),
    ("drop cross traffic", {"cross_traffic": False}),
    ("drop audio", {"audio": False}),
    ("remove random loss", {"random_loss_rate": 0.0}),
    ("remove contention loss", {"contention_loss_rate": 0.0}),
    ("remove jitter", {"delay_jitter_std": 0.0}),
    ("constant 3 Mbps trace", {"trace_kind": "const:3"}),
    ("default 30ms RTT", {"base_rtt": 0.03}),
    ("default 100KB queue", {"queue_capacity_bytes": 100_000}),
)


def shrink(case: FuzzCase,
           fails: Optional[Callable[[FuzzCase], bool]] = None) -> FuzzCase:
    """Greedily simplify a failing case while it keeps failing.

    ``fails`` is injectable for tests; the default re-runs the case under
    the auditor and reports whether any violation was found.
    """
    if fails is None:
        def fails(c: FuzzCase) -> bool:
            return bool(run_case(c)[0])
    current = case
    for _label, fields in _SHRINK_MOVES:
        if all(getattr(current, k) == v for k, v in fields.items()):
            continue
        candidate = dataclasses.replace(current, **fields)
        if fails(candidate):
            current = candidate
    return current


@dataclass
class FuzzFailure:
    case: FuzzCase
    shrunk: FuzzCase
    violations: List[Violation]

    @property
    def flight_dump(self) -> Optional[str]:
        """Flight-recorder dump from the first violation carrying one."""
        return next((v.flight_dump for v in self.violations
                     if v.flight_dump), None)


@dataclass
class FuzzResult:
    cases_run: int
    events_checked: int
    failures: List[FuzzFailure]

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz(num_cases: int, root_seed: int = 1, start_index: int = 0,
         do_shrink: bool = True,
         on_progress: Optional[Callable[[FuzzCase, List[Violation]], None]]
         = None) -> FuzzResult:
    """Run ``num_cases`` seeded scenarios under the auditor."""
    failures: List[FuzzFailure] = []
    events_total = 0
    for index in range(start_index, start_index + num_cases):
        case = case_from_seed(root_seed, index)
        violations, events = run_case(case)
        events_total += events
        if on_progress is not None:
            on_progress(case, violations)
        if violations:
            shrunk = shrink(case) if do_shrink else case
            if shrunk != case:
                # Re-run the shrunk reproduction so the reported
                # violations (and their flight dumps) describe the
                # minimal case, not the original.
                rerun, _ = run_case(shrunk)
                if rerun:
                    violations = rerun
            failures.append(FuzzFailure(case, shrunk, violations))
    return FuzzResult(cases_run=num_cases, events_checked=events_total,
                      failures=failures)


def main(argv: Optional[list] = None) -> int:
    """``python -m repro fuzz`` entry point (also callable directly)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="randomized invariant-audited sessions")
    parser.add_argument("--cases", type=int, default=10)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--start", type=int, default=0,
                        help="first case index (resume a sweep)")
    parser.add_argument("--no-shrink", action="store_true")
    parser.add_argument("--replay", default=None, metavar="SEED:INDEX",
                        help="re-run one case, e.g. --replay 1:7")
    args = parser.parse_args(argv)

    if args.replay is not None:
        seed_s, _, index_s = args.replay.partition(":")
        case = case_from_seed(int(seed_s), int(index_s or "0"))
        print(case.describe())
        violations, events = run_case(case)
        print(f"{events} events checked, {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v}")
        dump = next((v.flight_dump for v in violations if v.flight_dump),
                    None)
        if dump:
            print("flight recorder (last records before the first "
                  "violation):")
            print(dump)
        return 1 if violations else 0

    def progress(case: FuzzCase, violations: List[Violation]) -> None:
        status = "FAIL" if violations else "ok"
        print(f"{status:>4}  {case.describe()}")

    result = fuzz(args.cases, root_seed=args.seed, start_index=args.start,
                  do_shrink=not args.no_shrink, on_progress=progress)
    print(f"\n{result.cases_run} cases, {result.events_checked} events "
          f"checked, {len(result.failures)} failing")
    for failure in result.failures:
        print(f"\nfailing case {failure.case.describe()}")
        for v in failure.violations[:10]:
            print(f"  {v}")
        print(f"shrunk to {failure.shrunk.describe()}")
        if failure.flight_dump:
            print("flight recorder (last records before the first "
                  "violation):")
            print(failure.flight_dump)
        print(f"replay: python -m repro fuzz --replay {failure.case.label}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
