"""Event-hook invariant auditor for the RTC stack.

The auditor is a pure observer: it wraps the hand-off seams between
components (pacer exit, link offer/deliver/drop, receiver arrival) to
keep *independent* packet/byte counters, chains onto the event loop's
``on_event`` hook, and after every executed event cross-checks the
stack's own state against those counters and against the control laws of
PAPER §4.1 Algorithm 1. Nothing it reads is allowed to perturb the run:
in particular it never calls :meth:`TokenBucket.tokens` (which advances
the lazy-refill state and could shift float rounding) — token counts are
recomputed virtually from the raw fields.

Three invariant families (see DESIGN.md for the full catalogue):

* **Conservation** — packets/bytes offered to a stage equal delivered +
  dropped + still queued, at pacer and bottleneck link, plus a
  non-negative in-flight count between the stages.
* **State** — token count within ``[0, bucket_bytes]``, non-negative
  queues, monotone event time, RTT at or above the propagation floor,
  ACE-N bucket within ``[min, max]``, bucket/pacer synchronization.
* **Control-law conformance** — every recorded ACE-N decision replayed
  against Algorithm 1: loss-halve really halves (clamped), the
  queue-threshold decrease removes exactly the excess, increases honour
  the application limit, fast recovery only fires with standing-RTT
  evidence and never jumps past the regime bound.

Violations either raise :class:`InvariantViolation` immediately
(``strict=True``, the ``REPRO_AUDIT=1`` mode — the traceback lands
inside the offending event) or are collected for an end-of-run report
(``strict=False``, the ``--check`` mode).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.transport.pacer.token_bucket_pacer import TokenBucketPacer

if TYPE_CHECKING:
    from repro.core.ace_n import AceNController
    from repro.live.clock import Clock, ScheduledCall
    from repro.net.link import Link
    from repro.net.path import NetworkPath
    from repro.transport.cc.base import CongestionController
    from repro.transport.pacer.base import Pacer

#: Absolute slack (bytes) for float comparisons on byte quantities.
EPS_BYTES = 1e-6
#: Relative slack for rate/size comparisons.
REL_EPS = 1e-9


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= EPS_BYTES + REL_EPS * max(abs(a), abs(b))


@dataclass
class Violation:
    """One invariant breach, with enough context to chase it."""

    time: float
    invariant: str
    detail: str
    #: flight-recorder dump (last N telemetry records before the breach)
    #: when the session ran with telemetry enabled; None otherwise.
    flight_dump: Optional[str] = None

    def __str__(self) -> str:
        return f"[t={self.time:.6f}] {self.invariant}: {self.detail}"


class InvariantViolation(AssertionError):
    """Raised in strict mode at the event where the invariant broke."""

    def __init__(self, violation: Violation) -> None:
        message = str(violation)
        if violation.flight_dump:
            message += ("\n--- flight recorder (last records before the "
                        "violation) ---\n" + violation.flight_dump)
        super().__init__(message)
        self.violation = violation


@dataclass
class _SeamCounters:
    """Independent packet/byte counters kept by the seam wrappers."""

    left_pacer_packets: int = 0
    left_pacer_bytes: int = 0
    #: pacer-origin packets lost before reaching the link (random or
    #: contention loss on the path).
    prelink_lost_packets: int = 0
    #: all flows offered to / leaving the bottleneck link.
    link_in_packets: int = 0
    link_in_bytes: int = 0
    link_out_packets: int = 0
    link_out_bytes: int = 0
    link_drop_packets: int = 0
    link_drop_bytes: int = 0
    #: media-flow (flow_id == 0) subset, for the in-flight balance.
    link_in_media: int = 0
    link_out_media: int = 0
    arrived_media: int = 0


class SessionAuditor:
    """Checks the invariant catalogue after every event.

    Attach with :meth:`attach` (sim: per-event via ``loop.on_event``)
    or :meth:`attach_polling` (live: periodic, via ``clock.call_later``
    — wall clocks have no event hook). ``fine_grained`` gates the checks
    that are only sound when evaluated at event granularity (decision
    conformance against mutable controller scratch state); polling mode
    forces it off.
    """

    def __init__(self, clock: "Clock", pacer: "Pacer", *,
                 link: Optional["Link"] = None,
                 path: Optional["NetworkPath"] = None,
                 ace_n: Optional["AceNController"] = None,
                 cc: Optional["CongestionController"] = None,
                 rtt_floor: Optional[float] = None,
                 strict: bool = True,
                 fine_grained: bool = True,
                 max_violations: int = 50,
                 telemetry=None) -> None:
        self.clock = clock
        #: optional :class:`repro.obs.Telemetry`; when set, each violation
        #: captures a flight-recorder dump of the records leading up to it.
        self.telemetry = telemetry
        self.pacer = pacer
        self.link = link
        self.path = path
        self.ace_n = ace_n
        self.cc = cc
        self.rtt_floor = rtt_floor
        self.strict = strict
        self.fine_grained = fine_grained
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.events_checked = 0
        self._counters = _SeamCounters()
        self._attached = False
        self._saturated = False
        self._last_now = -math.inf
        # ACE-N decision replay state.
        self._decision_cursor = 0
        self._traj_bucket: Optional[float] = None
        #: auditor's own view of the "bucket last seen with an empty
        #: buffer" ratchet; tracked permissively (>= the controller's)
        #: so stale-regime fast-recovery jumps are flagged without
        #: false-positives from within-event ordering.
        self._shadow_ratchet: Optional[float] = None
        # Saved originals for detach().
        self._orig_pacer_send_fn: Optional[Callable] = None
        self._orig_link_send: Optional[Callable] = None
        self._orig_on_deliver: Optional[Callable] = None
        self._orig_on_drop: Optional[Callable] = None
        self._orig_on_arrival: Optional[Callable] = None
        self._prev_hook: Optional[Callable] = None
        self._hooked_loop = None
        self._poll_timer: Optional["ScheduledCall"] = None
        self._poll_interval: Optional[float] = None

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self) -> "SessionAuditor":
        """Per-event auditing: chain onto ``loop.on_event`` (sim only).

        Must run *before* ``loop.run()`` — the run loop snapshots the
        hook at entry.
        """
        if self._attached:
            raise RuntimeError("auditor already attached")
        loop = self.clock
        if not hasattr(loop, "on_event"):
            raise TypeError("clock has no on_event hook; use attach_polling()"
                            " for wall clocks")
        self._wrap_seams()
        self._prev_hook = loop.on_event
        self._hooked_loop = loop
        loop.on_event = self._on_event
        self._attached = True
        if self.ace_n is not None:
            self._decision_cursor = len(self.ace_n.decisions)
            self._traj_bucket = self.ace_n.bucket_bytes
        return self

    def attach_polling(self, interval_s: float = 0.1) -> "SessionAuditor":
        """Periodic auditing for clocks without an event hook (live mode).

        Timing-sensitive conformance checks are disabled (the controller
        mutates between polls), and violations are always collected —
        raising inside an asyncio timer callback would be swallowed by
        the loop's exception handler. Call :meth:`finalize` at session
        end to surface them.
        """
        if self._attached:
            raise RuntimeError("auditor already attached")
        self.fine_grained = False
        self.strict = False
        self._wrap_seams()
        self._attached = True
        if self.ace_n is not None:
            self._decision_cursor = len(self.ace_n.decisions)
            self._traj_bucket = self.ace_n.bucket_bytes
        self._poll_interval = interval_s
        self._poll_timer = self.clock.call_later(
            interval_s, self._poll_tick, "audit.poll")
        return self

    def detach(self) -> None:
        """Restore every wrapped seam and hook."""
        if not self._attached:
            return
        if self._hooked_loop is not None:
            self._hooked_loop.on_event = self._prev_hook
            self._hooked_loop = None
        if self._poll_timer is not None:
            self._poll_timer.cancel()
            self._poll_timer = None
        if self._orig_pacer_send_fn is not None:
            self.pacer.send_fn = self._orig_pacer_send_fn
        link = self.link
        if link is not None:
            if self._orig_link_send is not None:
                # The wrapper shadows the bound method in the instance
                # dict; deleting it re-exposes the class method.
                del link.send
            link.on_deliver = self._orig_on_deliver
            link.on_drop = self._orig_on_drop
        if self.path is not None:
            self.path.on_arrival = self._orig_on_arrival
        self._attached = False

    def _wrap_seams(self) -> None:
        counters = self._counters
        orig_send_fn = self.pacer.send_fn
        self._orig_pacer_send_fn = orig_send_fn

        def pacer_exit(packet, _orig=orig_send_fn, _c=counters):
            _c.left_pacer_packets += 1
            _c.left_pacer_bytes += packet.size_bytes
            _orig(packet)
            # Path-level (pre-link) loss is synchronous and never stamps
            # t_enter_queue; link tail-drop happens in a later event.
            if packet.dropped and packet.t_enter_queue is None:
                _c.prelink_lost_packets += 1

        self.pacer.send_fn = pacer_exit

        link = self.link
        if link is not None:
            orig_link_send = link.send
            self._orig_link_send = orig_link_send

            def link_offer(packet, _orig=orig_link_send, _c=counters):
                _c.link_in_packets += 1
                _c.link_in_bytes += packet.size_bytes
                if packet.flow_id == 0:
                    _c.link_in_media += 1
                return _orig(packet)

            link.send = link_offer  # instance attr shadows the method

            self._orig_on_deliver = link.on_deliver
            self._orig_on_drop = link.on_drop

            def link_deliver(packet, _orig=self._orig_on_deliver, _c=counters):
                _c.link_out_packets += 1
                _c.link_out_bytes += packet.size_bytes
                if packet.flow_id == 0:
                    _c.link_out_media += 1
                if _orig is not None:
                    _orig(packet)

            def link_drop(packet, _orig=self._orig_on_drop, _c=counters):
                _c.link_drop_packets += 1
                _c.link_drop_bytes += packet.size_bytes
                if _orig is not None:
                    _orig(packet)

            link.on_deliver = link_deliver
            link.on_drop = link_drop

        path = self.path
        if path is not None:
            self._orig_on_arrival = path.on_arrival

            def arrival(packet, _orig=self._orig_on_arrival, _c=counters):
                if packet.flow_id == 0:
                    _c.arrived_media += 1
                if _orig is not None:
                    _orig(packet)

            path.on_arrival = arrival

    # ------------------------------------------------------------------
    # hook plumbing
    # ------------------------------------------------------------------
    def _on_event(self, event) -> None:
        if self._prev_hook is not None:
            self._prev_hook(event)
        if not self._saturated:
            self.check_now()

    def _poll_tick(self) -> None:
        if not self._attached:
            return
        if not self._saturated:
            self.check_now()
        self._poll_timer = self.clock.call_later(
            self._poll_interval, self._poll_tick, "audit.poll")

    def _fail(self, invariant: str, detail: str) -> None:
        if self._saturated:
            return
        violation = Violation(float(self.clock.now), invariant, detail)
        if self.telemetry is not None:
            violation.flight_dump = self.telemetry.flight_dump()
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(violation)
        if len(self.violations) >= self.max_violations:
            self._saturated = True

    # ------------------------------------------------------------------
    # the catalogue
    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Run every applicable invariant check against current state."""
        self.events_checked += 1
        now = float(self.clock.now)
        if now < self._last_now:
            self._fail("time.monotone",
                       f"clock moved backwards: {self._last_now:.9f} -> {now:.9f}")
        self._last_now = now
        self._check_pacer()
        if self.link is not None:
            self._check_link()
            self._check_inflight()
        if isinstance(self.pacer, TokenBucketPacer):
            self._check_token_bucket()
        if self.cc is not None:
            self._check_cc()
        if self.ace_n is not None:
            self._check_ace()

    def _check_pacer(self) -> None:
        pacer = self.pacer
        stats = pacer.stats
        c = self._counters
        queued_p = pacer.queued_packets
        queued_b = pacer.queued_bytes
        if queued_p < 0 or queued_b < 0:
            self._fail("pacer.queue.nonneg",
                       f"negative pacer queue: {queued_p} pkts / {queued_b} B")
        if stats.sent_packets != c.left_pacer_packets:
            self._fail("pacer.conservation",
                       f"pacer stats claim {stats.sent_packets} sent but "
                       f"{c.left_pacer_packets} packets crossed send_fn")
        if stats.enqueued_packets - c.left_pacer_packets != queued_p:
            self._fail("pacer.conservation",
                       f"enqueued {stats.enqueued_packets} - sent "
                       f"{c.left_pacer_packets} != queued {queued_p} packets")
        if stats.enqueued_bytes - c.left_pacer_bytes != queued_b:
            self._fail("pacer.conservation",
                       f"enqueued {stats.enqueued_bytes} - sent "
                       f"{c.left_pacer_bytes} != queued {queued_b} bytes")

    def _check_link(self) -> None:
        link = self.link
        c = self._counters
        queued_p = link.queued_packets
        queued_b = link.queued_bytes
        capacity = link.queue.capacity_bytes
        if not 0 <= queued_b <= capacity:
            self._fail("link.queue.bounds",
                       f"link queue {queued_b} B outside [0, {capacity}]")
        if c.link_in_packets - c.link_out_packets - c.link_drop_packets != queued_p:
            self._fail("link.conservation",
                       f"offered {c.link_in_packets} - delivered "
                       f"{c.link_out_packets} - dropped {c.link_drop_packets}"
                       f" != queued {queued_p} packets")
        if c.link_in_bytes - c.link_out_bytes - c.link_drop_bytes != queued_b:
            self._fail("link.conservation",
                       f"offered {c.link_in_bytes} - delivered "
                       f"{c.link_out_bytes} - dropped {c.link_drop_bytes}"
                       f" != queued {queued_b} bytes")
        stats = link.stats
        if stats.enqueued_packets != c.link_in_packets - c.link_drop_packets:
            self._fail("link.conservation",
                       f"LinkStats.enqueued {stats.enqueued_packets} != "
                       f"offered-dropped {c.link_in_packets - c.link_drop_packets}")
        if stats.delivered_packets != c.link_out_packets:
            self._fail("link.conservation",
                       f"LinkStats.delivered {stats.delivered_packets} != "
                       f"observed {c.link_out_packets}")
        if stats.dropped_packets != c.link_drop_packets:
            self._fail("link.conservation",
                       f"LinkStats.dropped {stats.dropped_packets} != "
                       f"observed {c.link_drop_packets}")

    def _check_inflight(self) -> None:
        c = self._counters
        to_link = (c.left_pacer_packets - c.prelink_lost_packets
                   - c.link_in_media)
        if to_link < 0:
            self._fail("path.inflight.nonneg",
                       f"{c.link_in_media} media packets reached the link but"
                       f" only {c.left_pacer_packets} left the pacer"
                       f" ({c.prelink_lost_packets} lost pre-link)")
        to_receiver = c.link_out_media - c.arrived_media
        if to_receiver < 0:
            self._fail("path.inflight.nonneg",
                       f"{c.arrived_media} media arrivals exceed "
                       f"{c.link_out_media} link deliveries")

    def _check_token_bucket(self) -> None:
        pacer = self.pacer
        bucket = pacer.bucket
        # Read the raw token field: every legitimate mutation (refill,
        # consume, resize) leaves it in [0, bucket_bytes], and a lazy
        # refill only moves it toward the cap — so the raw value carries
        # the invariant. Never call bucket.tokens(now) here: it advances
        # the refill state and the changed float rounding breaks
        # bit-identical fixed-seed runs.
        tokens = bucket._tokens
        if tokens < -EPS_BYTES or tokens > bucket._bucket_bytes + EPS_BYTES:
            self._fail("bucket.tokens.range",
                       f"token count {tokens:.3f} outside "
                       f"[0, {bucket._bucket_bytes:.3f}]")
        expected = pacer.pacing_rate_bps * pacer.rate_factor
        rate = bucket.rate_bps
        if rate <= 0 or not math.isfinite(rate):
            self._fail("pacer.token-rate", f"token rate {rate} not positive")
        elif pacer.max_queue_time_s is None:
            if not _close(rate, expected):
                self._fail("pacer.token-rate",
                           f"token rate {rate:.1f} != pacing_rate x factor "
                           f"{expected:.1f}")
        else:
            # The queue-time valve may only *raise* the rate, and at most
            # to the level the current backlog justifies. The check is
            # one-sided upward (retransmission/audio enqueues refresh the
            # valve lazily, at the next frame enqueue or send).
            valve = pacer.queued_bytes * 8 / pacer.max_queue_time_s
            ceiling = max(expected, valve)
            if rate < expected * (1 - REL_EPS) - EPS_BYTES:
                self._fail("pacer.token-rate",
                           f"token rate {rate:.1f} below pacing_rate x factor"
                           f" {expected:.1f}")
            elif rate > ceiling * (1 + REL_EPS) + EPS_BYTES:
                self._fail("pacer.token-rate",
                           f"token rate {rate:.1f} exceeds valve ceiling "
                           f"{ceiling:.1f} (backlog {pacer.queued_bytes} B): "
                           "inflated rate persisted after the backlog drained")

    def _check_cc(self) -> None:
        bwe = self.cc.bwe_bps
        if not math.isfinite(bwe) or bwe <= 0:
            self._fail("cc.bwe.finite", f"bandwidth estimate {bwe} bps")

    # -- ACE-N ----------------------------------------------------------
    def _check_ace(self) -> None:
        ace = self.ace_n
        cfg = ace.config
        bucket = ace.bucket_bytes
        if (bucket < cfg.min_bucket_bytes - EPS_BYTES
                or bucket > cfg.max_bucket_bytes + EPS_BYTES):
            self._fail("ace.bucket.range",
                       f"bucket {bucket:.1f} outside "
                       f"[{cfg.min_bucket_bytes}, {cfg.max_bucket_bytes}]")
        if self.rtt_floor is not None:
            rtt_min = ace.queue_estimator.rtt_min
            if rtt_min is not None and rtt_min < self.rtt_floor - 1e-9:
                self._fail("rtt.floor",
                           f"RTT_min {rtt_min:.6f} below propagation floor "
                           f"{self.rtt_floor:.6f}")
        self._check_ace_decisions()
        if self.fine_grained:
            est = ace.queue_estimator
            if est.rtt_standing() is not None and est.queue_is_empty():
                current = ace.bucket_bytes
                if (self._shadow_ratchet is None
                        or current > self._shadow_ratchet):
                    self._shadow_ratchet = current
        if isinstance(self.pacer, TokenBucketPacer):
            expected = max(ace.bucket_bytes, self.pacer.min_bucket_bytes)
            if not _close(self.pacer.bucket_bytes, expected):
                self._fail("ace.pacer.sync",
                           f"pacer bucket {self.pacer.bucket_bytes:.1f} != "
                           f"controller bucket {expected:.1f}")

    def _check_ace_decisions(self) -> None:
        """Replay newly recorded decisions against Algorithm 1."""
        ace = self.ace_n
        cfg = ace.config
        decisions = ace.decisions
        prev = self._traj_bucket

        def clamp(value: float) -> float:
            return min(max(value, cfg.min_bucket_bytes), cfg.max_bucket_bytes)

        while self._decision_cursor < len(decisions):
            d = decisions[self._decision_cursor]
            self._decision_cursor += 1
            new = d.bucket_bytes
            if d.reason == "loss-halve":
                want = clamp(prev / 2.0)
                if not _close(new, want):
                    self._fail("ace.law.loss-halve",
                               f"halve from {prev:.1f} produced {new:.1f}, "
                               f"expected {want:.1f}")
                if self._shadow_ratchet is not None:
                    decayed = cfg.empty_ratchet_decay * self._shadow_ratchet
                    self._shadow_ratchet = max(new, decayed)
            elif d.reason == "queue-threshold":
                if d.est_queue_bytes <= cfg.threshold_bytes - EPS_BYTES:
                    self._fail("ace.law.queue-threshold",
                               f"decrease at est_queue {d.est_queue_bytes:.1f}"
                               f" <= threshold {cfg.threshold_bytes:.1f}")
                want = clamp(prev - (d.est_queue_bytes - cfg.threshold_bytes))
                if not _close(new, want):
                    self._fail("ace.law.queue-threshold",
                               f"decrease from {prev:.1f} produced {new:.1f},"
                               f" expected {want:.1f}")
            elif d.reason == "additive-increase":
                if not prev < new <= prev + cfg.additive_step_bytes + EPS_BYTES:
                    self._fail("ace.law.additive-increase",
                               f"step from {prev:.1f} to {new:.1f} exceeds "
                               f"additive step {cfg.additive_step_bytes:.1f}")
                self._check_app_limit(prev, new)
            elif d.reason == "fast-recovery":
                if new <= prev + EPS_BYTES:
                    self._fail("ace.law.fast-recovery",
                               f"recovery did not grow the bucket "
                               f"({prev:.1f} -> {new:.1f})")
                if self.fine_grained:
                    if ace.queue_estimator.rtt_standing() is None:
                        self._fail("ace.law.fast-recovery",
                                   "fired with no standing-RTT evidence "
                                   "(empty recent-RTT window)")
                    candidates = []
                    if self._shadow_ratchet is not None:
                        candidates.append(self._shadow_ratchet)
                    if ace._queue_before_loss is not None:
                        candidates.append(cfg.alpha * ace._queue_before_loss)
                    bound = (max(prev, clamp(min(candidates)))
                             if candidates else prev)
                    if new > bound + EPS_BYTES + REL_EPS * bound:
                        self._fail("ace.law.fast-recovery",
                                   f"jumped to {new:.1f}, past the regime "
                                   f"bound {bound:.1f} (stale empty-buffer "
                                   "ratchet?)")
                self._check_app_limit(prev, new)
            elif d.reason == "app-limit":
                if new != prev:
                    self._fail("ace.law.app-limit",
                               f"app-limit record changed the bucket "
                               f"({prev:.1f} -> {new:.1f})")
            prev = new
        self._traj_bucket = prev
        if prev is not None and ace.bucket_bytes != prev:
            self._fail("ace.decision.trajectory",
                       f"bucket is {ace.bucket_bytes:.1f} but the decision "
                       f"log ends at {prev:.1f} (bucket mutated without a "
                       "recorded decision)")
            self._traj_bucket = ace.bucket_bytes

    def _check_app_limit(self, prev: float, new: float) -> None:
        if not self.fine_grained:
            return
        ace = self.ace_n
        last_frame = ace._last_frame_bytes
        if last_frame is None:
            return
        ceiling = max(prev, last_frame, ace.config.min_bucket_bytes)
        if new > ceiling + EPS_BYTES + REL_EPS * ceiling:
            self._fail("ace.law.app-limit",
                       f"increase to {new:.1f} exceeds the application limit"
                       f" (last frame {last_frame:.1f})")

    # ------------------------------------------------------------------
    # wrap-up
    # ------------------------------------------------------------------
    def finalize(self, expect_drained: bool = False) -> List[Violation]:
        """End-of-run check; returns (and in strict mode raises on) violations.

        With ``expect_drained=True`` (sim sessions after the drain
        window) additionally requires the pacer and link queues to be
        empty so the conservation ledgers close exactly.
        """
        if self._attached:
            if not self._saturated:
                self.check_now()
            if expect_drained:
                if self.pacer.queued_packets:
                    self._fail_collect(
                        "final.drained",
                        f"{self.pacer.queued_packets} packets still in the "
                        "pacer after the drain window")
                if self.link is not None and self.link.queued_packets:
                    self._fail_collect(
                        "final.drained",
                        f"{self.link.queued_packets} packets still queued at "
                        "the link after the drain window")
            self.detach()
        if self.strict and self.violations:
            raise InvariantViolation(self.violations[0])
        return self.violations

    def _fail_collect(self, invariant: str, detail: str) -> None:
        # Like _fail but never raises mid-finalize; strictness is applied
        # once at the end of finalize().
        self.violations.append(
            Violation(float(self.clock.now), invariant, detail))

    def report(self) -> str:
        """Human-readable summary for the CLI."""
        if not self.violations:
            return (f"audit clean: {self.events_checked} events checked, "
                    "0 violations")
        lines = [f"audit FAILED: {len(self.violations)} violation(s) over "
                 f"{self.events_checked} events checked"]
        lines += [f"  {v}" for v in self.violations[:20]]
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        first_dump = next((v.flight_dump for v in self.violations
                           if v.flight_dump), None)
        if first_dump:
            lines.append("flight recorder (last records before the first "
                         "violation):")
            lines += [f"  {line}" for line in first_dump.splitlines()]
        return "\n".join(lines)


def attach_audit(session, strict: bool = True,
                 max_violations: int = 50) -> SessionAuditor:
    """Attach a per-event auditor to a not-yet-run :class:`RtcSession`.

    Must be called before ``session.run()`` (the event loop snapshots
    its hook when it starts). Returns the attached auditor; call
    ``finalize()`` after the run for the end-of-session checks.
    """
    auditor = SessionAuditor(
        session.loop,
        session.sender.pacer,
        link=session.path.link,
        path=session.path,
        ace_n=session.sender.ace_n,
        cc=session.cc,
        rtt_floor=session.config.base_rtt,
        strict=strict,
        max_violations=max_violations,
        telemetry=getattr(session, "telemetry", None),
    )
    return auditor.attach()
