"""Video substrate: content sources, codec models, rate control, quality.

The paper's pipeline feeds real videos (YouTube UGC categories) into
real encoders (x264/VP8/...). Here the same interfaces are served by
stochastic models calibrated to the paper's measurements:

* frame-size heavy tails (Fig. 2: 10% of frames > 2x mean, 1% > 5x),
* per-category variability (Fig. 8: CV 0.56 lecture -> 1.03 gaming),
* the complexity-size-time tradeoff (Fig. 4: 38-51% size reduction at
  max complexity; Fig. 5: encode 6 -> 12 ms, decode flat).
"""

from repro.video.frame import EncodedFrame, RawFrame
from repro.video.source import CONTENT_CATEGORIES, ContentProfile, VideoSource
from repro.video.quality import QualityModel
from repro.video.codec.model import CodecModel, ComplexityLevel, EncoderConfig
from repro.video.codec.presets import (
    make_av1_model,
    make_vp8_model,
    make_vp9_model,
    make_x264_model,
    make_x265_model,
)
from repro.video.codec.rate_control import (
    AbrVbvRateControl,
    CbrRateControl,
    CqpRateControl,
    RateControl,
)

__all__ = [
    "RawFrame",
    "EncodedFrame",
    "VideoSource",
    "ContentProfile",
    "CONTENT_CATEGORIES",
    "QualityModel",
    "CodecModel",
    "ComplexityLevel",
    "EncoderConfig",
    "make_x264_model",
    "make_x265_model",
    "make_vp8_model",
    "make_vp9_model",
    "make_av1_model",
    "RateControl",
    "AbrVbvRateControl",
    "CbrRateControl",
    "CqpRateControl",
]
