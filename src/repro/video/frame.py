"""Frame data structures shared between source, encoder and transport."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class RawFrame:
    """An uncompressed frame as produced by the capture source.

    ``satd`` is the Sum of Absolute Transformed Differences against the
    previous frame — the content-difference signal the encoder's rate
    control (and ACE-C's size predictor) operates on. It is in arbitrary
    but consistent units; only ratios against a running mean matter.
    """

    frame_id: int
    capture_time: float
    satd: float
    scene_change: bool = False
    category: str = "generic"


@dataclass
class EncodedFrame:
    """Output of the encoder model for one frame."""

    frame_id: int
    capture_time: float
    size_bytes: int
    encode_time: float
    quality_vmaf: float
    complexity_level: int
    qp: float
    satd: float
    planned_bytes: int
    is_keyframe: bool = False
    # Filled by the pipeline:
    encode_start: Optional[float] = None
    encode_end: Optional[float] = None

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8
