"""Rate control strategies: ABR+VBV, CBR, CQP.

These mirror the x264 modes the paper discusses (§5.1):

* **ABR + VBV** — average-bitrate coding: per-frame size follows content
  difficulty (bits proportional to SATD at near-constant quality) with a
  slow correction so the long-run average meets the target, plus a VBV
  (hypothetical decoder buffer) that caps how far a frame may overshoot.
  This is the paper's recommended real-time mode and the WebRTC*
  baseline's strategy: highest quality, but oversized frames survive.
* **CBR** — every frame is forced to the per-frame budget by aggressive
  QP adjustment: lowest burstiness, but complex frames are starved of
  bits and lose quality (the 7-15 VMAF gap in Fig. 12).
* **CQP** — constant quantizer: size follows content with no feedback at
  all (used for codec characterization benches, not as an RTC baseline).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.video.codec.model import CodecModel
from repro.video.frame import RawFrame


class RateControl(abc.ABC):
    """Strategy that plans the encoded size of each frame."""

    @abc.abstractmethod
    def plan_bytes(self, codec: CodecModel, frame: RawFrame,
                   target_bitrate_bps: float, fps: float) -> float:
        """Planned size in bytes for ``frame`` at the current target rate."""

    @abc.abstractmethod
    def on_encoded(self, actual_bytes: int, target_bitrate_bps: float,
                   fps: float) -> None:
        """Feed back the achieved size so the controller can correct."""

    @staticmethod
    def target_frame_bytes(target_bitrate_bps: float, fps: float) -> float:
        """The per-frame budget F-bar = bitrate / fps, in bytes."""
        return target_bitrate_bps / fps / 8.0


@dataclass
class VbvState:
    """Video Buffering Verifier state (leaky decoder-buffer model)."""

    buffer_size_bytes: float
    fill_bytes: float = 0.0

    def headroom(self) -> float:
        return self.buffer_size_bytes - self.fill_bytes

    def account_frame(self, frame_bytes: float, drain_bytes: float) -> None:
        """Add a frame, drain one frame interval's worth of budget."""
        self.fill_bytes = max(0.0, self.fill_bytes + frame_bytes - drain_bytes)


class AbrVbvRateControl(RateControl):
    """Average bitrate with VBV overshoot control.

    Works the way x264's ABR actually does: it maintains a slowly
    adapting *quality setpoint* (a quantizer scale, here expressed as a
    normalized-rate setpoint ``u``). Every frame is planned at the bits
    that setpoint demands for the frame's difficulty — so per-frame
    quality is flat by construction and frame sizes inherit the content's
    heavy-tailed difficulty distribution (Fig. 2). The setpoint drifts
    multiplicatively so the achieved-bitrate EWMA converges to the
    target; a VBV (hypothetical decoder buffer) hard-caps how far a
    burst of frames may overshoot.

    ``vbv_seconds`` sizes the buffer in seconds of target bitrate;
    ``max_rho`` hard-caps a single frame at that multiple of the budget.
    """

    def __init__(self, vbv_seconds: float = 0.3, max_rho: float = 8.0,
                 setpoint_gain: float = 0.05, rate_window: float = 0.10) -> None:
        self.vbv_seconds = vbv_seconds
        self.max_rho = max_rho
        self.setpoint_gain = setpoint_gain
        self.rate_window = rate_window
        self._vbv: VbvState | None = None
        self._u_setpoint: float | None = None
        self._rate_ewma: float | None = None

    @property
    def u_setpoint(self) -> float | None:
        """Current quality setpoint in normalized-rate units."""
        return self._u_setpoint

    def _bytes_per_u(self, codec: CodecModel, satd: float) -> float:
        """Bytes one unit of normalized rate costs for this frame."""
        qm = codec.quality_model
        eff = codec.config.efficiency  # base complexity level
        return qm.bits_per_satd * qm.difficulty(satd) * eff / 8.0

    def plan_bytes(self, codec: CodecModel, frame: RawFrame,
                   target_bitrate_bps: float, fps: float) -> float:
        budget = self.target_frame_bytes(target_bitrate_bps, fps)
        if self._vbv is None:
            self._vbv = VbvState(buffer_size_bytes=self.vbv_seconds
                                 * target_bitrate_bps / 8.0)
        else:
            self._vbv.buffer_size_bytes = self.vbv_seconds * target_bitrate_bps / 8.0
        per_u = self._bytes_per_u(codec, frame.satd)
        if self._u_setpoint is None:
            # Bootstrap: the setpoint that spends the budget on a frame
            # of running-mean difficulty.
            mean_per_u = self._bytes_per_u(codec, codec.satd_mean)
            self._u_setpoint = budget / max(mean_per_u, 1.0)
        planned = self._u_setpoint * per_u
        # Hard VBV wall: a frame may never push the buffer past its size.
        vbv_cap = budget + max(0.0, self._vbv.headroom())
        planned = min(planned, vbv_cap, budget * self.max_rho)
        return max(planned, budget * 0.05)

    def on_encoded(self, actual_bytes: int, target_bitrate_bps: float,
                   fps: float) -> None:
        budget = self.target_frame_bytes(target_bitrate_bps, fps)
        if self._vbv is not None:
            self._vbv.account_frame(actual_bytes, budget)
        if self._rate_ewma is None:
            self._rate_ewma = float(actual_bytes)
        else:
            self._rate_ewma = (self.rate_window * actual_bytes
                               + (1 - self.rate_window) * self._rate_ewma)
        if self._u_setpoint is None:
            return
        # Multiplicative setpoint drift toward the rate target: spending
        # above budget lowers quality slightly, below raises it.
        error = self._rate_ewma / max(budget, 1.0)
        self._u_setpoint *= error ** (-self.setpoint_gain)
        self._u_setpoint = min(max(self._u_setpoint, 0.05), 50.0)


class CbrRateControl(RateControl):
    """Near-constant bitrate: every frame pinned to the per-frame budget.

    ``tolerance`` allows a small fluctuation band (pure CBR is
    impossible; x264's tightest VBV still wobbles a few percent).
    """

    def __init__(self, tolerance: float = 0.10) -> None:
        self.tolerance = tolerance
        self._debt = 0.0  # bytes over/under target carried to next frame

    def plan_bytes(self, codec: CodecModel, frame: RawFrame,
                   target_bitrate_bps: float, fps: float) -> float:
        budget = self.target_frame_bytes(target_bitrate_bps, fps)
        planned = budget - self._debt
        low = budget * (1.0 - self.tolerance)
        high = budget * (1.0 + self.tolerance)
        return min(max(planned, low), high)

    def on_encoded(self, actual_bytes: int, target_bitrate_bps: float,
                   fps: float) -> None:
        budget = self.target_frame_bytes(target_bitrate_bps, fps)
        self._debt = 0.7 * self._debt + (actual_bytes - budget)


class CqpRateControl(RateControl):
    """Constant quantizer: bits follow content with no rate feedback.

    ``quality`` is the per-frame quality setpoint; the plan is whatever
    the codec's natural size at that quality is.
    """

    def __init__(self, quality: float = 85.0, level_index: int = 0) -> None:
        self.quality = quality
        self.level_index = level_index

    def plan_bytes(self, codec: CodecModel, frame: RawFrame,
                   target_bitrate_bps: float, fps: float) -> float:
        return codec.natural_bits(frame, self.level_index, self.quality) / 8.0

    def on_encoded(self, actual_bytes: int, target_bitrate_bps: float,
                   fps: float) -> None:
        pass  # open loop by definition
