"""Per-codec presets calibrated to the paper's measurements.

Complexity levels mirror the paper's x264 parameter sets (Table 2):

* c0 — 8x8-only partitions, DIA motion search, subpel 1, no trellis.
* c1 — all partitions, HEX search, subpel 4, no trellis.
* c2 — c1 plus trellis quantization.

Calibration targets: max-complexity size reduction of 38-51% depending
on codec (Fig. 4), encode time rising from ~6 ms to ~12 ms across levels
(Fig. 5), decode time flat, and newer codecs (HEVC/VP9/AV1) having lower
base bitrate at equal quality (the dashed line in Fig. 4).
"""

from __future__ import annotations

from repro.sim.rng import RngStream
from repro.video.codec.model import CodecModel, ComplexityLevel, EncoderConfig
from repro.video.quality import QualityModel


def x264_config() -> EncoderConfig:
    """x264 (H.264) — the paper's primary encoder."""
    return EncoderConfig(
        name="x264",
        efficiency=1.00,
        levels=[
            ComplexityLevel(0, "c0:I8x8/DIA/subpel1/notrellis", phi=0.00,
                            base_encode_time=0.006),
            ComplexityLevel(1, "c1:all/HEX/subpel4/notrellis", phi=0.28,
                            base_encode_time=0.009),
            ComplexityLevel(2, "c2:all/HEX/subpel4/trellis", phi=0.40,
                            base_encode_time=0.012),
        ],
    )


def x265_config() -> EncoderConfig:
    """x265 (HEVC) — complexity via min-cu-size per Appendix A.3."""
    return EncoderConfig(
        name="x265",
        efficiency=0.72,
        levels=[
            ComplexityLevel(0, "c0:min-cu-32", phi=0.00, base_encode_time=0.009),
            ComplexityLevel(1, "c1:min-cu-16", phi=0.30, base_encode_time=0.014),
            ComplexityLevel(2, "c2:min-cu-8", phi=0.45, base_encode_time=0.020),
        ],
    )


def vp8_config() -> EncoderConfig:
    """libvpx VP8 — native WebRTC encoder; modest complexity range."""
    return EncoderConfig(
        name="vp8",
        efficiency=1.10,
        levels=[
            ComplexityLevel(0, "c0:cpu-used-8", phi=0.00, base_encode_time=0.008),
            ComplexityLevel(1, "c1:cpu-used-4", phi=0.22, base_encode_time=0.012),
            ComplexityLevel(2, "c2:cpu-used-0", phi=0.38, base_encode_time=0.017),
        ],
        size_noise_sigma=0.11,
    )


def vp9_config() -> EncoderConfig:
    """libvpx VP9 — speed + block-division control per Appendix A.4."""
    return EncoderConfig(
        name="vp9",
        efficiency=0.78,
        levels=[
            ComplexityLevel(0, "c0:speed-8", phi=0.00, base_encode_time=0.010),
            ComplexityLevel(1, "c1:speed-5", phi=0.26, base_encode_time=0.015),
            ComplexityLevel(2, "c2:speed-2", phi=0.42, base_encode_time=0.022),
        ],
    )


def av1_config() -> EncoderConfig:
    """AV1 — superblock 128->64 and speed control per Appendix A.4."""
    return EncoderConfig(
        name="av1",
        efficiency=0.62,
        levels=[
            ComplexityLevel(0, "c0:sb128/speed-10", phi=0.00, base_encode_time=0.012),
            ComplexityLevel(1, "c1:sb64/speed-7", phi=0.32, base_encode_time=0.019),
            ComplexityLevel(2, "c2:sb64/speed-4", phi=0.51, base_encode_time=0.028),
        ],
    )


_CONFIG_FACTORIES = {
    "x264": x264_config,
    "h264": x264_config,
    "x265": x265_config,
    "h265": x265_config,
    "hevc": x265_config,
    "vp8": vp8_config,
    "vp9": vp9_config,
    "av1": av1_config,
}


def codec_config(name: str) -> EncoderConfig:
    """Look up an :class:`EncoderConfig` by codec name (case-insensitive)."""
    key = name.lower()
    if key not in _CONFIG_FACTORIES:
        raise KeyError(f"unknown codec {name!r}; choose from {sorted(set(_CONFIG_FACTORIES))}")
    return _CONFIG_FACTORIES[key]()


def _make(config: EncoderConfig, rng: RngStream,
          quality_model: QualityModel | None) -> CodecModel:
    return CodecModel(config, rng, quality_model=quality_model)


def make_x264_model(rng: RngStream, quality_model: QualityModel | None = None) -> CodecModel:
    return _make(x264_config(), rng, quality_model)


def make_x265_model(rng: RngStream, quality_model: QualityModel | None = None) -> CodecModel:
    return _make(x265_config(), rng, quality_model)


def make_vp8_model(rng: RngStream, quality_model: QualityModel | None = None) -> CodecModel:
    return _make(vp8_config(), rng, quality_model)


def make_vp9_model(rng: RngStream, quality_model: QualityModel | None = None) -> CodecModel:
    return _make(vp9_config(), rng, quality_model)


def make_av1_model(rng: RngStream, quality_model: QualityModel | None = None) -> CodecModel:
    return _make(av1_config(), rng, quality_model)
