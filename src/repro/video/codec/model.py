"""Core encoder model: complexity levels, size, time and quality.

The model captures the three encoder properties ACE exploits:

1. **Content-proportional size.** At a fixed quality, the bits a frame
   needs scale with its SATD (standard rate-control assumption, Eq. 4 of
   the paper models rate as linear in SATD).
2. **Complexity-size tradeoff.** Higher complexity levels compress
   better: level ``c`` needs ``(1 - phi(c))`` of the base-level bits for
   the same quality, at the cost of extra encoding time (Fig. 4/5).
3. **Rate-control authority.** Given a planned size, the encoder adjusts
   QP to hit it (up to noise); quality then follows from the achieved
   bits via the :class:`~repro.video.quality.QualityModel`.

Decoding time is modelled flat across complexity — the asymmetry §2
highlights (Fig. 5) and which makes complexity adaptation receiver-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.sim.rng import RngStream
from repro.video.frame import EncodedFrame, RawFrame
from repro.video.quality import QualityModel


@dataclass(frozen=True)
class ComplexityLevel:
    """One complexity operating point of an encoder.

    ``phi`` is the paper's compression-reduction factor: the fractional
    size saving over the base level at equal quality (phi = 0 for c0).
    ``base_encode_time``/``time_per_megabit`` give the encode-time model;
    ``label`` mirrors the parameter sets of Table 2 (x264) / Appendix A.
    """

    index: int
    label: str
    phi: float
    base_encode_time: float
    time_per_megabit: float = 0.0005

    def encode_time(self, size_bits: float, jitter: float = 0.0) -> float:
        """Encoding wall time for a frame of ``size_bits``."""
        t = self.base_encode_time + self.time_per_megabit * size_bits / 1e6
        return max(1e-4, t * (1.0 + jitter))


@dataclass
class EncoderConfig:
    """Static configuration of a :class:`CodecModel` instance."""

    name: str
    #: Relative bitrate efficiency vs. H.264 at base complexity
    #: (smaller = better compression; the dashed line in Fig. 4).
    efficiency: float
    levels: Sequence[ComplexityLevel]
    decode_time: float = 0.0025
    decode_time_jitter: float = 0.15
    #: intra (key) frames cost this many times the bits of an inter
    #: frame at equal quality — no temporal prediction to lean on.
    keyframe_cost: float = 2.5
    #: lognormal sigma of rate-control miss (actual vs planned size).
    size_noise_sigma: float = 0.08
    #: encode-time jitter (uniform +/-).
    time_jitter: float = 0.10

    def level(self, index: int) -> ComplexityLevel:
        for lvl in self.levels:
            if lvl.index == index:
                return lvl
        raise KeyError(f"{self.name} has no complexity level {index}")

    @property
    def max_phi(self) -> float:
        return max(lvl.phi for lvl in self.levels)


class CodecModel:
    """Stateful encoder model for one stream.

    The encoder keeps a running mean of SATD (its own rate-control
    statistic, which ACE-C also reads — §5.1 notes size prediction is
    already an x264 rate-control feature) and exposes :meth:`encode`.
    """

    def __init__(self, config: EncoderConfig, rng: RngStream,
                 quality_model: Optional[QualityModel] = None,
                 satd_window: int = 240) -> None:
        self.config = config
        self.rng = rng
        self.quality_model = quality_model or QualityModel()
        self.satd_window = satd_window
        self._satd_mean: Optional[float] = None
        self._rc_satd_mean: Optional[float] = None
        self._frames_encoded = 0

    # ------------------------------------------------------------------
    # rate-control statistics
    # ------------------------------------------------------------------
    @property
    def satd_mean(self) -> float:
        """Running mean SATD (1.0 before any frame is seen)."""
        return self._satd_mean if self._satd_mean is not None else 1.0

    def observe_satd(self, satd: float) -> None:
        """Update the running SATD means (EWMA over ~satd_window frames)."""
        alpha = 2.0 / (self.satd_window + 1)
        if self._satd_mean is None:
            self._satd_mean = satd
        else:
            self._satd_mean = alpha * satd + (1 - alpha) * self._satd_mean
        rc = self.quality_model.difficulty(satd)
        if self._rc_satd_mean is None:
            self._rc_satd_mean = rc
        else:
            self._rc_satd_mean = alpha * rc + (1 - alpha) * self._rc_satd_mean

    def relative_satd(self, frame: RawFrame) -> float:
        """S / S-bar for this frame against the running mean."""
        return frame.satd / max(self.satd_mean, 1e-9)

    # ------------------------------------------------------------------
    # rate-control SATD statistic (what ACE-C reads, §5.1)
    # ------------------------------------------------------------------
    def rc_satd(self, frame: RawFrame) -> float:
        """The encoder rate-control's SATD statistic for a frame.

        x264's rate-control SATD is (by construction of its linear
        rate model) proportional to the frame's bit demand, which in
        this model grows as ``satd^difficulty_exponent``. ACE-C's
        linear size predictor (Eq. 4) is calibrated against exactly
        this statistic.
        """
        return self.quality_model.difficulty(frame.satd)

    @property
    def rc_satd_mean(self) -> float:
        """Running mean of the rate-control SATD statistic.

        Tracked as the mean *of* the statistic (not the statistic of the
        mean): the difficulty map is convex, so the two differ by a
        Jensen gap that would bias every relative-size prediction high.
        """
        if self._rc_satd_mean is not None:
            return self._rc_satd_mean
        return self.quality_model.difficulty(self.satd_mean)

    # ------------------------------------------------------------------
    # size model
    # ------------------------------------------------------------------
    def natural_bits(self, frame: RawFrame, level_index: int,
                     reference_quality: float = 85.0) -> float:
        """Bits this frame needs at ``reference_quality`` and given level.

        "Natural" size before any rate-control squeezing: proportional
        to SATD, scaled by codec efficiency and the level's phi.
        """
        level = self.config.level(level_index)
        eff = self.config.efficiency * (1.0 - level.phi)
        return self.quality_model.bits_for_score(reference_quality, frame.satd, eff)

    def encode(self, frame: RawFrame, planned_bytes: float, level_index: int,
               encode_start: float = 0.0,
               is_keyframe: bool = False) -> EncodedFrame:
        """Encode ``frame`` aiming at ``planned_bytes`` with the given level.

        The achieved size is the plan perturbed by rate-control noise;
        quality follows from the achieved bits and the level's effective
        efficiency; encode time follows the level's time model. Keyframes
        pay the intra-coding bit cost: the same bits buy less quality.
        """
        level = self.config.level(level_index)
        noise = self.rng.lognormal(0.0, self.config.size_noise_sigma)
        actual_bytes = max(200, int(planned_bytes * noise))
        eff = self.config.efficiency * (1.0 - level.phi)
        if is_keyframe:
            eff *= self.config.keyframe_cost
        quality = self.quality_model.score(actual_bytes * 8, frame.satd, eff)
        time_jitter = self.rng.uniform(-self.config.time_jitter,
                                       self.config.time_jitter)
        encode_time = level.encode_time(actual_bytes * 8, jitter=time_jitter)
        self.observe_satd(frame.satd)
        self._frames_encoded += 1
        # QP proxy: log ratio of natural mid-quality bits to achieved bits;
        # bigger = coarser quantization.
        natural = self.natural_bits(frame, level_index)
        qp = 26.0 + 6.0 * math.log2(max(natural / max(actual_bytes * 8, 1), 1e-6))
        return EncodedFrame(
            frame_id=frame.frame_id,
            capture_time=frame.capture_time,
            size_bytes=actual_bytes,
            encode_time=encode_time,
            quality_vmaf=quality,
            complexity_level=level_index,
            qp=qp,
            satd=frame.satd,
            planned_bytes=int(planned_bytes),
            is_keyframe=is_keyframe,
            encode_start=encode_start,
            encode_end=encode_start + encode_time,
        )

    def decode_time(self) -> float:
        """Decode wall time — flat across complexity levels (Fig. 5)."""
        jitter = self.rng.uniform(-self.config.decode_time_jitter,
                                  self.config.decode_time_jitter)
        return max(1e-4, self.config.decode_time * (1.0 + jitter))

    @property
    def frames_encoded(self) -> int:
        return self._frames_encoded
