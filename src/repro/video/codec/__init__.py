"""Codec models: frame-size/encode-time/quality behaviour of encoders."""

from repro.video.codec.model import CodecModel, ComplexityLevel, EncoderConfig
from repro.video.codec.presets import (
    make_av1_model,
    make_vp8_model,
    make_vp9_model,
    make_x264_model,
    make_x265_model,
)
from repro.video.codec.rate_control import (
    AbrVbvRateControl,
    CbrRateControl,
    CqpRateControl,
    RateControl,
)

__all__ = [
    "CodecModel",
    "ComplexityLevel",
    "EncoderConfig",
    "make_x264_model",
    "make_x265_model",
    "make_vp8_model",
    "make_vp9_model",
    "make_av1_model",
    "RateControl",
    "AbrVbvRateControl",
    "CbrRateControl",
    "CqpRateControl",
]
