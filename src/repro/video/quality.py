"""Analytic VMAF-like quality proxy.

The pipeline needs a quality score that (a) rises with the bits spent on
a frame relative to how hard the frame is, (b) saturates near 100, and
(c) credits higher encoding complexity with better compression
efficiency (same quality from fewer bits). A Hill-type saturating curve
in "effective bits per unit difficulty" provides exactly that ordering,
which is all the paper's comparisons rely on (e.g. CBR losing 7-15 VMAF
by starving complex frames, ACE-C matching WebRTC* quality).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class QualityModel:
    """Maps (bits, frame difficulty, codec efficiency) to a VMAF-like score.

    ``u`` is the normalized rate: actual bits divided by the bits a
    reference encode of this frame would need for mid-quality. The score
    is ``vmax * u^h / (u^h + 1)`` — at ``u = 1`` the score is ``vmax/2``;
    typical RTC operating points sit at ``u`` of 4-10 (scores in the
    80s-90s), so halving the bits of an oversized frame costs several
    points while small perturbations cost little.
    """

    vmax: float = 100.0
    #: Steepness of the rate-quality saturation (real VMAF saturates
    #: hard near the top: over-spending on easy frames buys ~nothing).
    hill: float = 3.0
    #: Bits a reference-efficiency codec needs per unit *difficulty*
    #: (satd^difficulty_exponent) for u = 1. Calibrated so a ~30 Mbps
    #: gaming stream sits in the mid 80s VMAF.
    bits_per_satd: float = 300_000.0
    #: Quality cost grows superlinearly with content difference: a frame
    #: twice as different needs ~3.5x the bits for the same perceptual
    #: score. This is what makes difficulty-proportional (ABR) allocation
    #: keep quality flat while starving a hard frame under CBR is
    #: catastrophic — the asymmetry behind CBR's VMAF deficit (Fig. 12)
    #: and ACE-C's free lunch on oversized frames.
    difficulty_exponent: float = 1.8

    def difficulty(self, satd: float) -> float:
        """Bits-demand scale of a frame with the given SATD."""
        if satd <= 0:
            satd = 1e-9
        return satd ** self.difficulty_exponent

    def normalized_rate(self, bits: float, satd: float,
                        efficiency: float = 1.0) -> float:
        """Effective bits per unit difficulty (higher = better quality).

        ``efficiency`` < 1 means the codec/complexity combination needs
        fewer bits for the same quality (e.g. AV1, or x264 at c2).
        """
        if bits <= 0:
            return 0.0
        return bits / (self.bits_per_satd * self.difficulty(satd) * efficiency)

    def score(self, bits: float, satd: float, efficiency: float = 1.0) -> float:
        """VMAF-like score in [0, vmax]."""
        u = self.normalized_rate(bits, satd, efficiency)
        if u <= 0:
            return 0.0
        uh = u ** self.hill
        score = self.vmax * uh / (uh + 1.0)
        # Clamp float rounding at the saturation plateau.
        return min(max(score, 0.0), self.vmax)

    def bits_for_score(self, target_score: float, satd: float,
                       efficiency: float = 1.0) -> float:
        """Invert :meth:`score`: bits needed to reach ``target_score``."""
        if not 0 < target_score < self.vmax:
            raise ValueError("target score must be inside (0, vmax)")
        ratio = target_score / (self.vmax - target_score)
        u = ratio ** (1.0 / self.hill)
        return u * self.bits_per_satd * self.difficulty(satd) * efficiency

    def score_delta_for_bit_ratio(self, base_bits: float, satd: float,
                                  ratio: float, efficiency: float = 1.0) -> float:
        """Quality change when bits are scaled by ``ratio`` (diagnostics)."""
        return (self.score(base_bits * ratio, satd, efficiency)
                - self.score(base_bits, satd, efficiency))
