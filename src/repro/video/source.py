"""Synthetic content sources, one profile per UGC category.

The paper evaluates on five YouTube categories (Music, Gaming, Sports,
Vlog, Lecture). What the downstream pipeline consumes from a video is
its per-frame SATD sequence: how different each frame is from the
previous one. We model that signal as a mean-reverting log-space process
(slow motion-intensity drift) with Poisson scene changes (large spikes)
and heavy-tailed per-frame innovation, tuned per category so encoded
frame-size variability matches Fig. 8 (coefficient of variation from
~0.56 for Lecture up to ~1.03 for Gaming).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.sim.rng import RngStream
from repro.video.frame import RawFrame


@dataclass(frozen=True)
class ContentProfile:
    """Statistical knobs for one content category.

    ``motion_volatility``/``motion_reversion`` shape the slow drift of
    content difficulty; ``innovation_sigma`` is per-frame lognormal
    noise; ``scene_change_rate`` is scene cuts per second, each
    multiplying SATD by ``scene_change_boost`` for one frame; ``tail_prob``
    and ``tail_scale`` add the rare large-difference frames (flashes,
    whole-screen motion) that create the paper's heavy tail.
    """

    name: str
    motion_volatility: float
    motion_reversion: float
    innovation_sigma: float
    scene_change_rate: float
    scene_change_boost: float
    tail_prob: float
    tail_scale: float
    base_satd: float = 1.0
    #: hard ceiling on satd as a multiple of base*motion — a frame's
    #: transformed difference cannot exceed the entropy of the raw frame,
    #: so the tail is heavy but bounded (paper Fig. 2 tops out ~5-8x in
    #: encoded size, i.e. ~4x in the linear SATD signal).
    max_relative_satd: float = 4.0


#: Category profiles ordered roughly by content dynamism. SATD here is a
#: *linear* image-difference signal; the encoder's bit demand scales as
#: satd^1.5 (see QualityModel.difficulty), so these sigmas are tuned so
#: the resulting encoded-size distributions match the paper: size CV
#: ~0.5 (lecture) to ~1.0+ (gaming) per Fig. 8, with ~10% of frames over
#: 2x and ~1% over 5x the mean size per Fig. 2.
CONTENT_CATEGORIES: dict[str, ContentProfile] = {
    "lecture": ContentProfile(
        name="lecture", motion_volatility=0.02, motion_reversion=0.10,
        innovation_sigma=0.20, scene_change_rate=0.02, scene_change_boost=2.2,
        tail_prob=0.004, tail_scale=1.3,
    ),
    "music": ContentProfile(
        name="music", motion_volatility=0.025, motion_reversion=0.08,
        innovation_sigma=0.38, scene_change_rate=0.15, scene_change_boost=2.6,
        tail_prob=0.008, tail_scale=1.8,
    ),
    "vlog": ContentProfile(
        name="vlog", motion_volatility=0.03, motion_reversion=0.08,
        innovation_sigma=0.45, scene_change_rate=0.08, scene_change_boost=2.8,
        tail_prob=0.010, tail_scale=2.0,
    ),
    "sports": ContentProfile(
        name="sports", motion_volatility=0.035, motion_reversion=0.06,
        innovation_sigma=0.55, scene_change_rate=0.12, scene_change_boost=3.0,
        tail_prob=0.015, tail_scale=2.2,
    ),
    "gaming": ContentProfile(
        name="gaming", motion_volatility=0.03, motion_reversion=0.06,
        innovation_sigma=0.62, scene_change_rate=0.25, scene_change_boost=3.2,
        tail_prob=0.020, tail_scale=2.5,
    ),
}


class VideoSource:
    """Generates :class:`RawFrame` objects at a fixed frame rate.

    The SATD of frame *n* is::

        satd_n = base * motion_n * innovation_n * (boost if scene cut)

    where ``motion`` follows a log-space mean-reverting walk and
    ``innovation`` is lognormal with an occasional Pareto tail kick.
    """

    def __init__(self, profile: ContentProfile, rng: RngStream,
                 fps: float = 30.0, start_time: float = 0.0) -> None:
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.profile = profile
        self.rng = rng
        self.fps = fps
        self.frame_interval = 1.0 / fps
        self._next_capture = start_time
        self._frame_id = 0
        self._log_motion = 0.0

    @classmethod
    def from_category(cls, category: str, rng: RngStream,
                      fps: float = 30.0) -> "VideoSource":
        if category not in CONTENT_CATEGORIES:
            raise KeyError(
                f"unknown category {category!r}; choose from {sorted(CONTENT_CATEGORIES)}"
            )
        return cls(CONTENT_CATEGORIES[category], rng, fps=fps)

    def next_frame(self) -> RawFrame:
        """Produce the next frame in capture order."""
        p = self.profile
        # Slow motion-intensity drift (log-space OU step).
        self._log_motion += (
            p.motion_reversion * (0.0 - self._log_motion)
            + self.rng.normal(0.0, p.motion_volatility)
        )
        motion = math.exp(self._log_motion)
        innovation = self.rng.lognormal(0.0, p.innovation_sigma)
        scene_change = self.rng.random() < p.scene_change_rate * self.frame_interval
        satd = p.base_satd * motion * innovation
        if scene_change:
            satd *= p.scene_change_boost
        elif self.rng.random() < p.tail_prob:
            satd *= 1.0 + p.tail_scale * self.rng.pareto(2.5)
        satd = min(satd, p.base_satd * motion * p.max_relative_satd)
        frame = RawFrame(
            frame_id=self._frame_id,
            capture_time=self._next_capture,
            satd=satd,
            scene_change=scene_change,
            category=p.name,
        )
        self._frame_id += 1
        self._next_capture += self.frame_interval
        return frame

    def frames(self, count: int) -> Iterator[RawFrame]:
        """Yield ``count`` consecutive frames."""
        for _ in range(count):
            yield self.next_frame()


def mixed_ugc_source(rng: RngStream, fps: float = 30.0) -> "MixedSource":
    """A corpus-like source cycling through all five categories."""
    return MixedSource(rng, fps=fps)


class MixedSource:
    """Concatenates segments from every category (UGC-corpus stand-in).

    Each segment lasts ``segment_frames`` frames; the category order is
    fixed so runs are comparable across baselines.
    """

    def __init__(self, rng: RngStream, fps: float = 30.0,
                 segment_frames: int = 300,
                 categories: Optional[list[str]] = None) -> None:
        self.categories = categories or list(CONTENT_CATEGORIES)
        self.segment_frames = segment_frames
        self.fps = fps
        self.frame_interval = 1.0 / fps
        self._sources = [
            VideoSource.from_category(cat, rng, fps=fps) for cat in self.categories
        ]
        self._emitted = 0
        self._frame_id = 0
        self._next_capture = 0.0

    def next_frame(self) -> RawFrame:
        index = (self._emitted // self.segment_frames) % len(self._sources)
        frame = self._sources[index].next_frame()
        # Re-stamp id/time so the concatenation looks like one stream.
        frame = RawFrame(
            frame_id=self._frame_id,
            capture_time=self._next_capture,
            satd=frame.satd,
            scene_change=frame.scene_change,
            category=frame.category,
        )
        self._emitted += 1
        self._frame_id += 1
        self._next_capture += self.frame_interval
        return frame

    def frames(self, count: int) -> Iterator[RawFrame]:
        for _ in range(count):
            yield self.next_frame()
