"""Vectorized macro-step batch engine (DESIGN §10).

Between decision boundaries — frame captures, encode completions,
feedback arrivals, skip timers — the pacer→link→queue pipeline is
piecewise linear: token-bucket drain, link serialization, and drop-tail
occupancy all evolve in closed form. This engine exploits that: instead
of one heap event per packet hop, it advances the pipeline over whole
packet trains with numpy array operations, handing control back to the
reference event loop at every boundary so all *decisions* (congestion
control, ACE-N/ACE-C, rate control, retransmission) run the unmodified
reference code on the unmodified state.

Structure:

* :class:`BatchEngine` — the :class:`~repro.sim.engine.SimulationEngine`
  implementation. ``prepare`` checks eligibility and installs the
  pipeline hooks; ``advance`` runs the macro loop (deliver pipeline work
  up to the next heap event, then dispatch that event); ``finalize``
  flushes deferred bookkeeping.
* :class:`BatchPipeline` — array-structured pacer/link/delivery state.
  Media frames travel as :class:`FrameBurst` column records; only
  retransmissions (and drops, which need ``Packet`` objects for the
  loss bookkeeping) take a scalar lane through the *reference* pacer
  and path machinery.

Configurations outside the fast path's model (random/contention loss,
delay jitter, cross traffic, FEC, audio, playout buffers, telemetry or
audit hooks, valve-enabled pacers) fall back to reference semantics:
``advance`` simply runs the event loop, producing bit-identical results
to ``--engine reference``. The fallback reason is kept on the engine
for tests and diagnostics.

Numerical contract: the fast path reorders float arithmetic (closed
forms and cumulative sums instead of sequential per-packet updates), so
batch results are *statistically* identical to reference results, not
bit-identical — see DESIGN §10 for the documented tolerances and the
differential tests that enforce them.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from heapq import heappop
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.net.packet import Packet, PacketType
from repro.transport.pacer.base import Pacer
from repro.transport.pacer.burst import BurstPacer
from repro.transport.pacer.leaky_bucket import LeakyBucketPacer
from repro.transport.pacer.token_bucket_pacer import TokenBucketPacer

if TYPE_CHECKING:
    from repro.rtc.session import RtcSession
    from repro.rtc.sender import Sender
    from repro.video.frame import EncodedFrame

#: mirrors Pacer.MIN_PUMP_DELAY_S for the scalar-lane release emulation.
_MIN_PUMP = Pacer.MIN_PUMP_DELAY_S


class FrameBurst:
    """Column-oriented record of one packetized frame in the pacer."""

    __slots__ = ("frame_id", "seq0", "count", "sizes", "cum", "total_bytes",
                 "enqueue_time", "prev_sent_frame_id", "metrics", "sent")

    def __init__(self, frame_id: int, seq0: int, sizes: np.ndarray,
                 enqueue_time: float, prev_sent_frame_id: Optional[int],
                 metrics) -> None:
        self.frame_id = frame_id
        self.seq0 = seq0
        self.count = len(sizes)
        self.sizes = sizes
        self.cum = np.cumsum(sizes, dtype=np.float64)
        self.total_bytes = int(self.cum[-1])
        self.enqueue_time = enqueue_time
        self.prev_sent_frame_id = prev_sent_frame_id
        self.metrics = metrics
        #: packets released from the pacer so far.
        self.sent = 0


def ineligible_reason(session: "RtcSession") -> Optional[str]:
    """Why the fast path cannot model ``session`` (None = eligible)."""
    path = session.path
    sender = session.sender
    pacer = sender.pacer
    from repro.net.aqm import DropTailQueue
    if type(path.link.queue) is not DropTailQueue:
        return ("non-default queue discipline "
                f"{type(path.link.queue).__name__}")
    if path._lossy:
        return "random/contention loss enabled"
    if path._jitter_enabled:
        return "forward delay jitter enabled"
    if session.cross_traffic is not None:
        return "cross traffic enabled"
    if sender.fec is not None:
        return "FEC enabled"
    if sender.audio is not None:
        return "audio substream enabled"
    if session.telemetry is not None:
        return "telemetry attached"
    if session.loop.on_event is not None:
        return "event hook attached (audit/tracing)"
    if session.loop.profiler is not None:
        return "loop profiler attached"
    if session.receiver.playout is not None:
        return "playout buffer enabled"
    if isinstance(pacer, TokenBucketPacer):
        if pacer.max_queue_time_s is not None:
            return "token pacer queue-time valve enabled"
        if pacer.on_frame_enqueued is not None:
            return "token pacer frame-enqueue hook set"
    elif isinstance(pacer, LeakyBucketPacer):
        if pacer.max_queue_time_s is not None:
            return "leaky pacer queue-time valve enabled"
    elif not isinstance(pacer, BurstPacer):
        return f"unsupported pacer type {type(pacer).__name__}"
    return None


class BatchEngine:
    """Macro-stepping engine; see the module docstring."""

    name = "batch"

    def __init__(self) -> None:
        self._pipeline: Optional[BatchPipeline] = None
        #: why the run fell back to reference semantics (None = fast).
        self.fallback_reason: Optional[str] = None

    def prepare(self, session: "RtcSession") -> None:
        self.fallback_reason = ineligible_reason(session)
        if self.fallback_reason is not None:
            return
        self._pipeline = BatchPipeline(session)
        self._pipeline.install()

    def advance(self, session: "RtcSession", until: float) -> None:
        pipe = self._pipeline
        loop = session.loop
        if pipe is None:
            loop.run(until=until)
            return
        heap = loop._heap
        run_until = pipe.run_until
        drain_to = pipe.drain_to
        while True:
            while heap and heap[0][2].cancelled:
                heappop(heap)
            if not heap or heap[0][0] > until:
                # No decision boundary left inside the horizon: flush
                # the pipeline to the horizon. Delivery callbacks may
                # schedule new events inside it (skip timers), so
                # re-check before declaring the advance done.
                run_until(until)
                while heap and heap[0][2].cancelled:
                    heappop(heap)
                if heap and heap[0][0] <= until:
                    continue
                if until > loop.now:
                    loop.now = until
                return
            t = heap[0][0]
            name = heap[0][2].name
            if name == "sender.encoded":
                # Encode-completion boundaries only append to the pacer
                # queue — no RNG draw, no receiver-derived read — so the
                # delivery flush can be deferred. No other boundary is
                # deferrable: captures draw from the codec RNG stream
                # that display-time decode draws interleave with, and
                # feedback arrivals read the sent-packet table that
                # DisplaySync.sync prunes from delivery callbacks.
                drain_to(t)
            else:
                run_until(t)
                while heap and heap[0][2].cancelled:
                    heappop(heap)
                if not heap or heap[0][0] < t:
                    # A delivery callback scheduled something earlier
                    # than the boundary we were heading for; restart.
                    continue
            when, _seq, event = heappop(heap)
            if event.name == "pacer.pump":
                # The pipeline drains the pacer in closed form; pump
                # events are decision-free and are discarded. Marking
                # them cancelled keeps Pacer._schedule_pump's "a pump is
                # already pending" fast path from suppressing future
                # pumps against a dead handle.
                event.cancelled = True
                continue
            loop.now = when
            loop._processed += 1
            event.callback()

    def finalize(self, session: "RtcSession") -> None:
        if self._pipeline is not None:
            self._pipeline.finalize()


class BatchPipeline:
    """Array-structured pacer → link → delivery state for one session."""

    def __init__(self, session: "RtcSession") -> None:
        self.session = session
        self.loop = session.loop
        self.sender = session.sender
        self.receiver = session.receiver
        self.pacer = session.sender.pacer
        self.path = session.path
        self.link = session.path.link
        self.trace = session.path.link.trace
        self.half_hop = session.path._half_hop
        self.capacity = self.link.queue.capacity_bytes
        if isinstance(self.pacer, TokenBucketPacer):
            self._pacer_kind = "token"
        elif isinstance(self.pacer, LeakyBucketPacer):
            self._pacer_kind = "leaky"
        else:
            self._pacer_kind = "burst"
        # --- pacer state -------------------------------------------------
        #: bursts with unreleased packets, FIFO (the media queue).
        self._media: deque[FrameBurst] = deque()
        #: all bursts ever enqueued, for NACK materialization.
        self._bursts: dict[int, FrameBurst] = {}
        self._seq0s: list[int] = []
        self._burst_list: list[FrameBurst] = []
        #: time of the most recent pacer release (priority floor).
        self._last_release = 0.0
        # --- link state --------------------------------------------------
        #: link busy-until (finish time of the last served packet).
        self._busy_until = 0.0
        #: bytes entered but not yet finished (drop-tail occupancy).
        self._q_bytes = 0
        #: serialization total of the last vector train (busy-time stat).
        self._ser_total = 0.0
        #: FIFO of finish-time records: [f_arr, cumsizes, pos] chunks for
        #: vector trains, (finish, size) tuples for scalar packets.
        self._fin: deque = deque()
        # --- receiver-bound work -----------------------------------------
        #: FIFO of pending deliveries in arrival order:
        #: [a_arr, send_arr, sizes_arr, burst, lo, pos] or (arrival, pkt).
        self._deliveries: deque = deque()
        # --- deferred bookkeeping ----------------------------------------
        self._send_event_chunks: list[tuple[np.ndarray, np.ndarray]] = []

    def install(self) -> None:
        self.sender.batch_sink = self
        self.path.intercept = self._on_scalar_packet

    # ------------------------------------------------------------------
    # sender sink (replaces packetize + pacer.enqueue for media)
    # ------------------------------------------------------------------
    def on_frame_encoded(self, sender: "Sender", encoded: "EncodedFrame") -> None:
        packetizer = sender.packetizer
        size_bytes = encoded.size_bytes
        count = packetizer.packet_count(size_bytes)
        seq0 = packetizer._next_seq
        packetizer._next_seq = seq0 + count
        payload = packetizer.payload_bytes
        sizes = np.full(count, payload, dtype=np.int64)
        sizes[-1] = size_bytes - payload * (count - 1)
        now = self.loop.now
        burst = FrameBurst(encoded.frame_id, seq0, sizes, now,
                           sender._last_sent_frame_id,
                           sender.frame_metrics[encoded.frame_id])
        sender._last_sent_frame_id = encoded.frame_id
        burst.metrics.pacer_enqueue = now
        if sender.ace_n is not None:
            sender.ace_n.on_frame_enqueued(size_bytes)
        pacer = self.pacer
        pacer._queued_bytes += burst.total_bytes
        stats = pacer.stats
        stats.enqueued_packets += count
        stats.enqueued_bytes += burst.total_bytes
        stats.occupancy_samples.append((now, pacer._queued_bytes))
        self._media.append(burst)
        self._bursts[encoded.frame_id] = burst
        self._seq0s.append(seq0)
        self._burst_list.append(burst)

    def materialize(self, seq: int) -> Optional[Packet]:
        """Rebuild the original Packet for ``seq`` (NACK handling)."""
        idx = bisect_right(self._seq0s, seq) - 1
        if idx < 0:
            return None
        burst = self._burst_list[idx]
        offset = seq - burst.seq0
        if offset >= burst.count:
            return None
        packet = Packet(
            size_bytes=int(burst.sizes[offset]),
            seq=seq,
            frame_id=burst.frame_id,
            frame_packet_index=offset,
            frame_packet_count=burst.count,
            t_enqueue_pacer=burst.enqueue_time,
        )
        if offset == 0 and burst.prev_sent_frame_id is not None:
            packet.prev_sent_frame_id = burst.prev_sent_frame_id
        return packet

    def forget_frame(self, sender: "Sender", frame_id: int) -> None:
        """Drop RTX state for a displayed frame (burst-mode twin)."""
        burst = self._bursts.get(frame_id)
        if burst is None:
            return
        sent_packets = sender._sent_packets
        rtx_last = sender._rtx_last_sent
        if not sent_packets and not rtx_last:
            return  # nothing materialized (loss-free so far): no state to drop
        for seq in range(burst.seq0, burst.seq0 + burst.count):
            sent_packets.pop(seq, None)
            rtx_last.pop(seq, None)

    # ------------------------------------------------------------------
    # macro step
    # ------------------------------------------------------------------
    def run_until(self, target: float) -> None:
        """Advance pacer releases and deliveries to ``target``."""
        if self._media or self.pacer._rtx_queue:
            self._drain_pacer(target)
        if self._deliveries:
            self._deliver(target)

    def drain_to(self, target: float) -> None:
        """Advance pacer releases only (delivery flush deferred)."""
        if self._media or self.pacer._rtx_queue:
            self._drain_pacer(target)

    # ------------------------------------------------------------------
    # pacer drain
    # ------------------------------------------------------------------
    def _drain_pacer(self, target: float) -> None:
        loop = self.loop
        pacer = self.pacer
        floor = self._last_release
        if floor < loop.now:
            floor = loop.now
        rtx = pacer._rtx_queue
        if rtx:
            # Scalar lane: retransmissions go through the unmodified
            # reference release machinery (timestamps, stats, token
            # consumption, send hooks) one packet at a time.
            kind = self._pacer_kind
            while rtx:
                head = rtx[0]
                if kind == "token":
                    delay = pacer.bucket.time_until_available(
                        head.size_bytes, floor)
                elif kind == "leaky":
                    delay = pacer._next_send_time - floor
                    if delay < 0.0:
                        delay = 0.0
                else:
                    delay = 0.0
                if delay > 0.0:
                    release_at = floor + (delay if delay > _MIN_PUMP
                                          else _MIN_PUMP)
                else:
                    release_at = floor
                if release_at > target:
                    # Head blocked beyond this advance; media must not
                    # overtake it (strict queue priority).
                    self._last_release = floor
                    return
                rtx.popleft()
                loop.now = release_at
                pacer._release(head)
                floor = release_at
        if self._media:
            if self._pacer_kind == "token":
                floor = self._drain_media_token(target, floor)
            elif self._pacer_kind == "leaky":
                floor = self._drain_media_leaky(target, floor)
            else:
                floor = self._drain_media_burst(floor)
        self._last_release = floor

    def _drain_media_token(self, target: float, floor: float) -> float:
        """Closed-form token-bucket drain of queued media bursts.

        Release times follow the reference pump exactly: packet ``j`` of
        the backlog leaves once cumulative tokens cover its cumulative
        bytes, i.e. at ``floor + (cum_j - tokens(floor)) * 8 / rate``
        (clamped to ``floor``). The cap cannot bind mid-backlog — tokens
        stay below one payload (< the bucket floor) while packets wait —
        so refill is linear and the drain is exactly piecewise linear.
        """
        bucket = self.pacer.bucket
        rate = bucket._rate_bps
        elapsed = floor - bucket._last_refill
        if elapsed > 0:
            filled = bucket._tokens + elapsed * rate / 8.0
            cap = bucket._bucket_bytes
            bucket._tokens = cap if filled > cap else filled
            bucket._last_refill = floor
        media = self._media
        while media:
            burst = media[0]
            sent = burst.sent
            cum = burst.cum[sent:]
            if sent:
                cum = cum - burst.cum[sent - 1]
            tokens = bucket._tokens
            d = floor + (cum - tokens) * (8.0 / rate)
            if d[0] < floor:
                np.maximum(d, floor, out=d)
            if d[-1] <= target:
                n = len(d)
            else:
                n = int(np.searchsorted(d, target, side="right"))
                if n == 0:
                    break
                d = d[:n]
            self._release_media(burst, sent, n, d)
            last = float(d[-1])
            left = tokens + (last - floor) * (rate / 8.0) - float(cum[n - 1])
            bucket._tokens = left if left > 0.0 else 0.0
            bucket._last_refill = last
            floor = last
            if burst.sent < burst.count:
                break
            media.popleft()
        return floor

    def _drain_media_leaky(self, target: float, floor: float) -> float:
        """Constant-rate drain: departures one serialization apart."""
        pacer = self.pacer
        rate = pacer.effective_rate_bps
        next_send = pacer._next_send_time
        media = self._media
        while media:
            burst = media[0]
            sent = burst.sent
            ser = burst.sizes[sent:] * (8.0 / rate)
            first = next_send if next_send > floor else floor
            d = np.empty(len(ser))
            d[0] = first
            np.cumsum(ser[:-1], out=d[1:])
            d[1:] += first
            if d[-1] <= target:
                n = len(d)
            else:
                n = int(np.searchsorted(d, target, side="right"))
                if n == 0:
                    break
                d = d[:n]
            self._release_media(burst, sent, n, d)
            floor = float(d[-1])
            next_send = floor + float(ser[n - 1])
            if burst.sent < burst.count:
                break
            media.popleft()
        pacer._next_send_time = next_send
        return floor

    def _drain_media_burst(self, floor: float) -> float:
        """No pacing: everything queued leaves immediately."""
        media = self._media
        while media:
            burst = media.popleft()
            sent = burst.sent
            n = burst.count - sent
            d = np.full(n, floor)
            self._release_media(burst, sent, n, d)
        return floor

    def _release_media(self, burst: FrameBurst, lo: int, n: int,
                       d: np.ndarray) -> None:
        """Bulk twin of Pacer._release + Sender._packet_leaves_pacer."""
        hi = lo + n
        sizes = burst.sizes[lo:hi]
        prev_cum = float(burst.cum[lo - 1]) if lo else 0.0
        cum_bytes = burst.cum[lo:hi] - prev_cum if lo else burst.cum[:hi]
        chunk_bytes = int(cum_bytes[-1])
        pacer = self.pacer
        pacer._queued_bytes -= chunk_bytes
        stats = pacer.stats
        stats.sent_packets += n
        stats.sent_bytes += chunk_bytes
        stats.pacing_delays.extend((d - burst.enqueue_time).tolist())
        # One occupancy sample per train (reference: one per packet).
        stats.occupancy_samples.append((float(d[-1]), pacer._queued_bytes))
        burst.metrics.pacer_last_exit = float(d[-1])
        burst.sent = hi
        self._send_event_chunks.append((d, sizes))
        self._feed_link_train(d + self.half_hop, d, sizes, cum_bytes,
                              chunk_bytes, burst, lo)

    # ------------------------------------------------------------------
    # link walk
    # ------------------------------------------------------------------
    def _feed_link_train(self, e: np.ndarray, send_times: np.ndarray,
                         sizes: np.ndarray, cum_bytes: np.ndarray,
                         total_bytes: int, burst: FrameBurst,
                         lo: int) -> None:
        """Serve a media train; entry times ``e`` are nondecreasing and
        follow all previously fed entries (FIFO)."""
        self._pop_finished(float(e[0]))
        if self._q_bytes + total_bytes <= self.capacity:
            # No drop is possible even if nothing drains while the whole
            # train enters — take the vector path.
            f = self._serve_vector(e, sizes, cum_bytes)
            if f is not None:
                self._q_bytes += total_bytes
                self._fin.append([f, cum_bytes, 0])
                stats = self.link.stats
                n = len(sizes)
                stats.enqueued_packets += n
                stats.enqueued_bytes += total_bytes
                stats.delivered_packets += n
                stats.delivered_bytes += total_bytes
                stats.busy_time += self._ser_total
                stats.occupancy_samples.append(
                    (float(e[0]), self._q_bytes))
                self._deliveries.append(
                    [f + self.half_hop, send_times, sizes, burst, lo, 0,
                     total_bytes])
                return
        self._feed_scalar_train(e, send_times, sizes, burst, lo)

    def _serve_vector(self, e: np.ndarray, sizes: np.ndarray,
                      cum_bytes: np.ndarray) -> Optional[np.ndarray]:
        """Lindley-recursion finish times at one trace-rate sample.

        Returns None when the sample would not cover every service start
        (rate change mid-train, or an outage) — the scalar walk handles
        those trains.
        """
        start0 = float(e[0])
        busy = self._busy_until
        if busy > start0:
            start0 = busy
        rate = self.trace.rate_at(start0)
        if rate <= 0.0:
            return None
        ser = sizes * (8.0 / rate)
        cs = np.cumsum(ser)
        base = e - cs
        base += ser
        if busy > base[0]:
            base[0] = busy
        f = np.maximum.accumulate(base)
        f += cs
        last_start = float(f[-1]) - float(ser[-1])
        if last_start >= self.trace.next_change_after(start0):
            return None
        self._busy_until = float(f[-1])
        self._ser_total = float(cs[-1])
        return f

    def _feed_scalar_train(self, e: np.ndarray, send_times: np.ndarray,
                           sizes: np.ndarray, burst: FrameBurst,
                           lo: int) -> None:
        """Per-packet walk: exact drop-tail decisions, any trace shape."""
        run_start = -1
        run_f: list[float] = []
        n = len(e)
        for i in range(n):
            entry = float(e[i])
            size = int(sizes[i])
            self._pop_finished(entry)
            if self._q_bytes + size > self.capacity:
                if run_f:
                    self._flush_run(run_f, run_start, send_times, sizes,
                                    burst, lo)
                    run_f = []
                run_start = -1
                self._drop_media(burst, lo + i, size, entry,
                                 float(send_times[i]))
                continue
            finish = self._serve_scalar(entry, size)
            self._q_bytes += size
            self._fin.append((finish, size))
            if run_start < 0:
                run_start = i
            run_f.append(finish)
        if run_f:
            self._flush_run(run_f, run_start, send_times, sizes, burst, lo)

    def _serve_scalar(self, entry: float, size: int) -> float:
        start = entry if entry > self._busy_until else self._busy_until
        rate = self.trace.rate_at(start)
        while rate <= 0.0:
            # Outage: the reference link retries every 50 ms.
            start += 0.05
            rate = self.trace.rate_at(start)
        finish = start + size * 8.0 / rate
        stats = self.link.stats
        stats.enqueued_packets += 1
        stats.enqueued_bytes += size
        stats.delivered_packets += 1
        stats.delivered_bytes += size
        stats.busy_time += finish - start
        self._busy_until = finish
        return finish

    def _flush_run(self, run_f: list[float], run_start: int,
                   send_times: np.ndarray, sizes: np.ndarray,
                   burst: FrameBurst, lo: int) -> None:
        hi = run_start + len(run_f)
        arrivals = np.array(run_f)
        arrivals += self.half_hop
        run_sizes = sizes[run_start:hi]
        self._deliveries.append(
            [arrivals, send_times[run_start:hi], run_sizes,
             burst, lo + run_start, 0, int(run_sizes.sum())])

    def _drop_media(self, burst: FrameBurst, index: int, size: int,
                    entry: float, send_time: float) -> None:
        """Tail-drop a burst packet: materialize it for loss accounting."""
        packet = Packet(
            size_bytes=size,
            seq=burst.seq0 + index,
            frame_id=burst.frame_id,
            frame_packet_index=index,
            frame_packet_count=burst.count,
            t_enqueue_pacer=burst.enqueue_time,
            t_leave_pacer=send_time,
            t_enter_queue=entry,
            dropped=True,
        )
        if index == 0 and burst.prev_sent_frame_id is not None:
            packet.prev_sent_frame_id = burst.prev_sent_frame_id
        stats = self.link.stats
        stats.dropped_packets += 1
        stats.dropped_bytes += size
        self.path._dropped_by_link(packet)

    def _pop_finished(self, t: float) -> None:
        """Retire link departures with finish time <= ``t`` (occupancy)."""
        fin = self._fin
        q = self._q_bytes
        while fin:
            head = fin[0]
            if type(head) is tuple:
                if head[0] <= t:
                    q -= head[1]
                    fin.popleft()
                    continue
                break
            f, cum, pos = head
            if f[-1] <= t:
                k = len(f)
            else:
                k = int(np.searchsorted(f, t, side="right"))
            if k > pos:
                q -= int(cum[k - 1]) - (int(cum[pos - 1]) if pos else 0)
                if k == len(f):
                    fin.popleft()
                    continue
                head[2] = k
            break
        self._q_bytes = q

    # ------------------------------------------------------------------
    # scalar lane (retransmissions released through the reference pacer)
    # ------------------------------------------------------------------
    def _on_scalar_packet(self, packet: Packet) -> None:
        """NetworkPath.intercept target: loop.now is the departure."""
        departure = self.loop.now
        entry = departure + self.half_hop
        packet.t_enter_queue = entry
        size = packet.size_bytes
        self._pop_finished(entry)
        if self._q_bytes + size > self.capacity:
            packet.dropped = True
            stats = self.link.stats
            stats.dropped_packets += 1
            stats.dropped_bytes += size
            self.path._dropped_by_link(packet)
            return
        finish = self._serve_scalar(entry, size)
        self._q_bytes += size
        self._fin.append((finish, size))
        packet.t_leave_queue = finish
        self._deliveries.append((finish + self.half_hop, packet))

    # ------------------------------------------------------------------
    # deliveries
    # ------------------------------------------------------------------
    def _deliver(self, barrier: float) -> None:
        deliveries = self._deliveries
        loop = self.loop
        session = self.session
        receiver = self.receiver
        sync = session._display_sync
        while deliveries:
            head = deliveries[0]
            if type(head) is tuple:
                arrival, packet = head
                if arrival > barrier:
                    return
                deliveries.popleft()
                loop.now = arrival
                packet.t_arrival = arrival
                session._on_arrival(packet)
                continue
            a_arr, send_arr, sizes_arr, burst, lo, pos, entry_bytes = head
            n_arr = len(a_arr)
            if a_arr[-1] <= barrier:
                hi = n_arr
            else:
                hi = int(np.searchsorted(a_arr, barrier, side="right"))
                if hi <= pos:
                    return
            index0 = lo + pos
            if pos == 0 and hi == n_arr:
                chunk_sizes = sizes_arr
                chunk_bytes = entry_bytes
                chunk_sends = send_arr
                chunk_arrivals = a_arr
            else:
                chunk_sizes = sizes_arr[pos:hi]
                chunk_bytes = int(chunk_sizes.sum())
                chunk_sends = send_arr[pos:hi]
                chunk_arrivals = a_arr[pos:hi]
            receiver.on_media_chunk(
                burst.frame_id,
                burst.seq0 + index0,
                index0,
                burst.count,
                burst.prev_sent_frame_id if index0 == 0 else None,
                chunk_sends,
                chunk_arrivals,
                chunk_sizes,
                chunk_bytes,
            )
            if sync.pending:
                sync.sync()
            if hi == n_arr:
                deliveries.popleft()
            else:
                head[5] = hi
                return

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Materialize deferred send events in chronological order."""
        sender = self.sender
        chunks = self._send_event_chunks
        if chunks:
            merged: list[tuple[float, int]] = []
            for d, sizes in chunks:
                merged.extend(zip(d.tolist(), sizes.tolist()))
            scalar = sender.send_events
            if scalar:
                merged.extend(scalar)
                merged.sort(key=_event_time)
            sender.send_events = merged
            self._send_event_chunks = []


def _event_time(event: tuple[float, int]) -> float:
    return event[0]
