"""Deterministic discrete-event simulation engine.

This package provides the substrate every other subsystem runs on: a
priority-queue event loop (:class:`EventLoop`), a simulation clock, and
seeded random-number streams so that experiments are reproducible
bit-for-bit across runs.
"""

from repro.sim.engine import ENGINE_NAMES, ReferenceEngine, SimulationEngine, get_engine
from repro.sim.events import Event, EventLoop, SimulationError
from repro.sim.rng import RngStream, SeedSequenceFactory

__all__ = [
    "Event",
    "EventLoop",
    "SimulationError",
    "RngStream",
    "SeedSequenceFactory",
    "SimulationEngine",
    "ReferenceEngine",
    "ENGINE_NAMES",
    "get_engine",
]
