"""Simulation engine seam: interchangeable session-advancing strategies.

A session owns an :class:`~repro.sim.events.EventLoop` and a network
path; *how* simulated time is advanced between the session's start and
its horizon is an engine concern. Two engines ship:

* ``reference`` — the discrete-event loop itself: every packet hop is a
  heap event. This is the bit-exact baseline the golden fingerprints in
  ``tests/test_sim_regression.py`` are pinned to.
* ``batch`` — :class:`~repro.sim.batch.BatchEngine`: macro-steps the
  pacer→link→queue pipeline between decision boundaries with vectorized
  closed forms (see DESIGN §10), falling back to reference semantics for
  configurations the fast path does not model.

Engines are deliberately tiny: ``prepare`` installs any hooks,
``advance`` moves the session's clock to ``until`` (inclusive, like
``EventLoop.run``), ``finalize`` flushes deferred bookkeeping before
metrics collection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Protocol, Type, runtime_checkable

if TYPE_CHECKING:
    from repro.rtc.session import RtcSession


@runtime_checkable
class SimulationEngine(Protocol):
    """Strategy for advancing a session's simulated clock."""

    #: registry key and the value recorded in fleet manifests.
    name: str

    def prepare(self, session: "RtcSession") -> None:
        """Install hooks on a fully-wired session, before it starts."""

    def advance(self, session: "RtcSession", until: float) -> None:
        """Advance simulated time to ``until`` (inclusive)."""

    def finalize(self, session: "RtcSession") -> None:
        """Flush deferred state before metrics collection."""


class ReferenceEngine:
    """The discrete-event loop, unchanged: one heap event per hop."""

    name = "reference"

    def prepare(self, session: "RtcSession") -> None:  # pragma: no cover
        pass

    def advance(self, session: "RtcSession", until: float) -> None:
        session.loop.run(until=until)

    def finalize(self, session: "RtcSession") -> None:  # pragma: no cover
        pass


def _batch_engine_cls() -> Type:
    # Imported lazily: batch.py needs numpy and pulls in transport
    # modules; the reference path must not pay for that import.
    from repro.sim.batch import BatchEngine

    return BatchEngine


ENGINE_NAMES = ("reference", "batch")


def get_engine(name: str) -> SimulationEngine:
    """Instantiate the engine registered under ``name``.

    Engines are stateful (the batch engine carries its pipeline), so
    every call returns a fresh instance.
    """
    if name == "reference":
        return ReferenceEngine()
    if name == "batch":
        return _batch_engine_cls()()
    raise ValueError(
        f"unknown engine {name!r}; expected one of {ENGINE_NAMES}")
