"""Event tracing for the simulation engine.

A :class:`Tracer` hooks an :class:`~repro.sim.events.EventLoop` and
records every executed event (time, name) plus any explicit annotations
components emit. Useful when debugging a pipeline interaction ("what
fired between t=1.20 and t=1.25?") without littering the code with
prints. Disabled unless installed, so the hot path stays clean.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.sim.events import EventLoop


@dataclass
class TraceRecord:
    time: float
    name: str
    detail: str = ""


class Tracer:
    """Records executed loop events and explicit annotations."""

    def __init__(self, loop: EventLoop,
                 name_filter: Optional[Callable[[str], bool]] = None,
                 max_records: int = 1_000_000) -> None:
        self.loop = loop
        self.name_filter = name_filter
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        self._installed = False
        self._orig_step: Optional[Callable[[], bool]] = None

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> "Tracer":
        """Hook the loop's step() to record each executed event."""
        if self._installed:
            return self
        self._orig_step = self.loop.step
        tracer = self

        def traced_step() -> bool:
            heap = tracer.loop._heap
            # Peek the next non-cancelled event's name before executing.
            # Heap entries are (time, seq, event) tuples.
            pending_name = ""
            for _when, _seq, event in heap:
                if not event.cancelled:
                    pending_name = event.name
                    break
            progressed = tracer._orig_step()
            if progressed:
                tracer._record(tracer.loop.now, pending_name)
            return progressed

        self.loop.step = traced_step  # type: ignore[method-assign]
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed and self._orig_step is not None:
            self.loop.step = self._orig_step  # type: ignore[method-assign]
            self._installed = False

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record(self, time: float, name: str, detail: str = "") -> None:
        if self.name_filter is not None and not self.name_filter(name):
            return
        if len(self.records) >= self.max_records:
            return
        self.records.append(TraceRecord(time, name, detail))

    def annotate(self, detail: str, name: str = "annotation") -> None:
        """Record an explicit marker at the current simulation time."""
        self._record(self.loop.now, name, detail)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def between(self, start: float, end: float) -> list[TraceRecord]:
        return [r for r in self.records if start <= r.time <= end]

    def counts(self) -> Counter:
        return Counter(r.name for r in self.records)

    def dump(self, limit: int = 50) -> str:
        lines = [f"{r.time:10.6f}  {r.name}  {r.detail}".rstrip()
                 for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more)")
        return "\n".join(lines)
