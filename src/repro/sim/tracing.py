"""Event tracing for the simulation engine.

A :class:`Tracer` hooks an :class:`~repro.sim.events.EventLoop` and
records every executed event (time, name) plus any explicit annotations
components emit. Useful when debugging a pipeline interaction ("what
fired between t=1.20 and t=1.25?") without littering the code with
prints. Disabled unless installed, so the hot path stays clean.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.sim.events import Event, EventLoop


@dataclass
class TraceRecord:
    time: float
    name: str
    detail: str = ""


class Tracer:
    """Records executed loop events and explicit annotations."""

    def __init__(self, loop: EventLoop,
                 name_filter: Optional[Callable[[str], bool]] = None,
                 max_records: int = 1_000_000) -> None:
        self.loop = loop
        self.name_filter = name_filter
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        #: records discarded after ``max_records`` was reached — a capped
        #: trace is truncated, not complete, and queries must be able to
        #: tell the difference.
        self.dropped_records = 0
        self._installed = False
        self._prev_hook: Optional[Callable[[Event], None]] = None
        #: the exact hook object placed on the loop (see install()).
        self._hook: Optional[Callable[[Event], None]] = None

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> "Tracer":
        """Attach to the loop's ``on_event`` hook to record executed events.

        Any hook already installed keeps firing (tracers chain), so two
        tracers with different filters can observe the same loop.
        """
        if self._installed:
            return self
        self._prev_hook = self.loop.on_event
        # One stable bound-method object: attribute access creates a new
        # bound method each time, so identity checks against the chain
        # (install/uninstall splicing) need the exact installed object.
        self._hook = self._on_event
        self.loop.on_event = self._hook
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Detach from the loop, safe in any order.

        Tracers chain: if another tracer installed after this one, naively
        restoring ``self._prev_hook`` would silently disconnect it (and
        everything after it). Instead, when this tracer is no longer the
        head of the chain, the hook that chained onto it is located by
        walking the chain and spliced directly to this tracer's
        predecessor, so every other tracer keeps firing.
        """
        if not self._installed:
            return
        if self.loop.on_event is self._hook:
            self.loop.on_event = self._prev_hook
        else:
            successor = self._find_successor()
            if successor is None:
                raise RuntimeError(
                    "tracer is installed but its hook is not in the loop's "
                    "on_event chain (a later hook does not chain, or "
                    "on_event was replaced directly); refusing to corrupt "
                    "the chain")
            successor._prev_hook = self._prev_hook
        self._prev_hook = None
        self._hook = None
        self._installed = False

    def _find_successor(self):
        """The chained hook owner whose predecessor is this tracer.

        Works for any chaining observer that keeps its predecessor in a
        ``_prev_hook`` attribute (tracers, the session auditor).
        """
        hook = self.loop.on_event
        while hook is not None:
            owner = getattr(hook, "__self__", None)
            prev = getattr(owner, "_prev_hook", None)
            if prev is self._hook:
                return owner
            hook = prev
        return None

    def _on_event(self, event: Event) -> None:
        self._record(self.loop.now, event.name)
        if self._prev_hook is not None:
            self._prev_hook(event)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record(self, time: float, name: str, detail: str = "") -> None:
        if self.name_filter is not None and not self.name_filter(name):
            return
        if len(self.records) >= self.max_records:
            self.dropped_records += 1
            return
        self.records.append(TraceRecord(time, name, detail))

    def annotate(self, detail: str, name: str = "annotation") -> None:
        """Record an explicit marker at the current simulation time."""
        self._record(self.loop.now, name, detail)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def between(self, start: float, end: float) -> list[TraceRecord]:
        return [r for r in self.records if start <= r.time <= end]

    def counts(self) -> Counter:
        counter = Counter(r.name for r in self.records)
        if self.dropped_records:
            counter["<dropped>"] = self.dropped_records
        return counter

    def dump(self, limit: int = 50) -> str:
        lines = [f"{r.time:10.6f}  {r.name}  {r.detail}".rstrip()
                 for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more)")
        if self.dropped_records:
            lines.append(f"!! {self.dropped_records} record(s) dropped at "
                         f"max_records={self.max_records}")
        return "\n".join(lines)
