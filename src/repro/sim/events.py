"""Priority-queue discrete-event loop.

All timing-sensitive behaviour in the reproduction (pacing, link
serialization, feedback, encoder completion) is expressed as events on a
single :class:`EventLoop`. Events fire in non-decreasing time order;
ties break by insertion order, which keeps runs deterministic.

Hot-path layout: the heap stores plain ``(time, seq, event)`` tuples so
heap sifting compares C-level floats/ints instead of calling a Python
``__lt__``; :class:`Event` is a slim ``__slots__`` handle that exists
only so callers can cancel a scheduled callback. Cancellation is a flag
checked at pop time — O(1), no heap surgery.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from repro.obs.profiler import LoopProfiler


class SimulationError(RuntimeError):
    """Raised on invalid use of the event loop (e.g. scheduling in the past)."""


class Event:
    """Handle for a scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is a monotonically
    increasing insertion counter so that two events at the same time fire
    in the order they were scheduled.
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], None], name: str = "") -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, seq={self.seq}, name={self.name!r}{state})"


class EventLoop:
    """Single-threaded deterministic discrete-event scheduler.

    Typical use::

        loop = EventLoop()
        loop.call_at(0.5, lambda: print("fired at t=0.5"))
        loop.run(until=1.0)

    ``now`` is a plain attribute (reading it is on the hot path); treat
    it as read-only outside this class.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        #: current simulation time in seconds (read-only for callers).
        self.now = start_time
        #: observability hook: called as ``on_event(event)`` after each
        #: executed callback (see :class:`repro.sim.tracing.Tracer`).
        #: ``None`` keeps the hot loop hook-free.
        self.on_event: Optional[Callable[[Event], None]] = None
        #: self-profiler (:class:`repro.obs.profiler.LoopProfiler`).
        #: ``None`` (the default) keeps dispatch on the unprofiled fast
        #: path — the check happens once per run()/drain(), not per event.
        self.profiler: Optional["LoopProfiler"] = None
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._processed = 0

    def set_profiler(self,
                     profiler: Optional["LoopProfiler"]) -> Optional["LoopProfiler"]:
        """Attach (or, with ``None``, detach) a self-profiler.

        Detaching restores the exact unprofiled dispatch path —
        ``scripts/check_perf.py`` gates that the off state costs nothing.
        Returns the attached profiler for chaining.
        """
        self.profiler = profiler
        return profiler

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def call_at(self, when: float, callback: Callable[[], None], name: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling strictly in the past raises :class:`SimulationError`;
        scheduling exactly at ``now`` is allowed and fires after events
        already queued for ``now``.
        """
        if not when >= self.now:        # single check catches past *and* NaN
            if math.isnan(when):
                raise SimulationError("cannot schedule an event at NaN time")
            raise SimulationError(
                f"cannot schedule event {name!r} at {when:.9f} < now {self.now:.9f}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, name)
        heappush(self._heap, (when, seq, event))
        return event

    def call_later(self, delay: float, callback: Callable[[], None], name: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` seconds (delay >= 0)."""
        if not delay >= 0:              # single check catches negative *and* NaN
            raise SimulationError(f"negative delay {delay} for event {name!r}")
        # call_at inlined (this is the hottest scheduling entry point);
        # now + delay with delay >= 0 can never be < now, so the
        # past-check is unnecessary here.
        when = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, name)
        heappush(self._heap, (when, seq, event))
        return event

    def step(self) -> bool:
        """Execute the next non-cancelled event. Returns False if none remain."""
        heap = self._heap
        profiler = self.profiler
        while heap:
            when, _seq, event = heappop(heap)
            if event.cancelled:
                continue
            self.now = when
            self._processed += 1
            if profiler is None:
                event.callback()
            else:
                t0 = perf_counter()
                event.callback()
                profiler.record(event.name, perf_counter() - t0)
            if self.on_event is not None:
                self.on_event(event)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget hits.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        When the loop stops because of ``until``, the clock is advanced to
        ``until`` even if no event fired there. ``max_events`` counts
        *executed callbacks* only — popping a cancelled event never burns
        budget.
        """
        heap = self._heap
        hook = self.on_event
        profiler = self.profiler
        limit = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        executed = 0
        stopped_on_budget = False
        try:
            if profiler is None:
                while heap:
                    if executed >= budget:
                        stopped_on_budget = True
                        break
                    entry = heappop(heap)
                    when = entry[0]
                    if when > limit:
                        # Past the horizon: put it back for the next run().
                        heappush(heap, entry)
                        break
                    event = entry[2]
                    if event.cancelled:
                        continue
                    self.now = when
                    executed += 1
                    event.callback()
                    if hook is not None:
                        hook(event)
            else:
                # Profiled twin of the loop above: identical dispatch
                # semantics, each callback bracketed by perf_counter().
                record = profiler.record
                while heap:
                    if executed >= budget:
                        stopped_on_budget = True
                        break
                    entry = heappop(heap)
                    when = entry[0]
                    if when > limit:
                        heappush(heap, entry)
                        break
                    event = entry[2]
                    if event.cancelled:
                        continue
                    self.now = when
                    executed += 1
                    t0 = perf_counter()
                    event.callback()
                    record(event.name, perf_counter() - t0)
                    if hook is not None:
                        hook(event)
        finally:
            self._processed += executed
        if stopped_on_budget:
            return
        if until is not None and until > self.now:
            self.now = until

    def drain(self, max_events: int = 10_000_000) -> None:
        """Run until the queue is empty, with a runaway guard."""
        heap = self._heap
        hook = self.on_event
        profiler = self.profiler
        executed = 0
        try:
            if profiler is None:
                while heap:
                    when, _seq, event = heappop(heap)
                    if event.cancelled:
                        continue
                    self.now = when
                    executed += 1
                    event.callback()
                    if hook is not None:
                        hook(event)
                    if executed > max_events:
                        raise SimulationError(
                            f"event budget of {max_events} exhausted")
            else:
                record = profiler.record
                while heap:
                    when, _seq, event = heappop(heap)
                    if event.cancelled:
                        continue
                    self.now = when
                    executed += 1
                    t0 = perf_counter()
                    event.callback()
                    record(event.name, perf_counter() - t0)
                    if hook is not None:
                        hook(event)
                    if executed > max_events:
                        raise SimulationError(
                            f"event budget of {max_events} exhausted")
        finally:
            self._processed += executed
