"""Priority-queue discrete-event loop.

All timing-sensitive behaviour in the reproduction (pacing, link
serialization, feedback, encoder completion) is expressed as events on a
single :class:`EventLoop`. Events fire in non-decreasing time order;
ties break by insertion order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised on invalid use of the event loop (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is a monotonically
    increasing insertion counter so that two events at the same time fire
    in the order they were scheduled.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class EventLoop:
    """Single-threaded deterministic discrete-event scheduler.

    Typical use::

        loop = EventLoop()
        loop.call_at(0.5, lambda: print("fired at t=0.5"))
        loop.run(until=1.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def call_at(self, when: float, callback: Callable[[], None], name: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling strictly in the past raises :class:`SimulationError`;
        scheduling exactly at ``now`` is allowed and fires after events
        already queued for ``now``.
        """
        if math.isnan(when):
            raise SimulationError("cannot schedule an event at NaN time")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event {name!r} at {when:.9f} < now {self._now:.9f}"
            )
        event = Event(time=when, seq=next(self._counter), callback=callback, name=name)
        heapq.heappush(self._heap, event)
        return event

    def call_later(self, delay: float, callback: Callable[[], None], name: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` seconds (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {name!r}")
        return self.call_at(self._now + delay, callback, name=name)

    def step(self) -> bool:
        """Execute the next non-cancelled event. Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget hits.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        When the loop stops because of ``until``, the clock is advanced to
        ``until`` even if no event fired there.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            next_event = self._heap[0]
            if next_event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and next_event.time > until:
                break
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until

    def drain(self, max_events: int = 10_000_000) -> None:
        """Run until the queue is empty, with a runaway guard."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(f"event budget of {max_events} exhausted")
