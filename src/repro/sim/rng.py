"""Seeded random-number streams.

Every stochastic component (video source, trace generator, loss model,
cross traffic) draws from its own named stream derived from a single
experiment seed. Streams are independent, so adding randomness to one
component never perturbs another — essential when comparing baselines on
"the same" workload.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(root_seed, name)`` stably."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStream:
    """A named, independently-seeded wrapper around ``numpy.random.Generator``."""

    def __init__(self, root_seed: int, name: str) -> None:
        self.name = name
        self.seed = _derive_seed(root_seed, name)
        self._gen = np.random.default_rng(self.seed)

    @property
    def generator(self) -> np.random.Generator:
        return self._gen

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._gen.normal(mean, std))

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        return float(self._gen.lognormal(mean, sigma))

    def exponential(self, scale: float = 1.0) -> float:
        return float(self._gen.exponential(scale))

    def pareto(self, shape: float) -> float:
        return float(self._gen.pareto(shape))

    def integers(self, low: int, high: int) -> int:
        return int(self._gen.integers(low, high))

    def choice(self, options, p=None):
        return self._gen.choice(options, p=p)

    def random(self) -> float:
        return float(self._gen.random())


class SeedSequenceFactory:
    """Factory handing out independent :class:`RngStream` objects.

    ::

        rngs = SeedSequenceFactory(seed=42)
        source_rng = rngs.stream("video.source")
        trace_rng = rngs.stream("net.trace")
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = RngStream(self.seed, name)
        return self._streams[name]

    def fork(self, salt: str) -> "SeedSequenceFactory":
        """Create a factory whose streams are independent of this one's."""
        return SeedSequenceFactory(_derive_seed(self.seed, f"fork:{salt}"))
