"""repro — reproduction of ACE: Sending Burstiness Control for
High-Quality Real-time Communication (SIGCOMM 2025).

Public API tour:

* ``repro.core`` — the paper's contribution: ACE-N (burstiness-adaptive
  token-bucket pacing) and ACE-C (complexity-adaptive encoding).
* ``repro.rtc`` — the end-to-end pipeline and the baseline registry;
  ``build_session("ace", trace)`` gives a runnable experiment.
* ``repro.net`` — trace-driven network emulation (Mahimahi-like).
* ``repro.video`` — content sources, codec models, rate control, quality.
* ``repro.transport`` — pacers, congestion control, feedback, receiver.
* ``repro.bench`` — workloads and sweep helpers shared by benchmarks/.

Quickstart::

    from repro.net import make_wifi_trace
    from repro.rtc import SessionConfig, build_session
    from repro.sim import RngStream

    trace = make_wifi_trace(RngStream(1, "trace"))
    session = build_session("ace", trace, SessionConfig(duration=15.0))
    metrics = session.run()
    print(metrics.p95_latency(), metrics.mean_vmaf())
"""

__version__ = "1.0.0"

from repro.rtc import SessionConfig, build_session, list_baselines

__all__ = ["SessionConfig", "build_session", "list_baselines", "__version__"]
