#!/usr/bin/env python
"""Network-condition study: how ACE's win varies with RTT and buffer size.

Sweeps the two network parameters the paper identifies as decisive:

* base RTT (pacing latency matters more as RTT shrinks — §3.1), and
* bottleneck buffer size (bursting safety margin — §3.3 / Fig. 10),

printing ACE's P95 latency reduction over WebRTC* at each point.

Run:  python examples/trace_study.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installing
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.net import make_wifi_trace
from repro.rtc import SessionConfig, build_session
from repro.sim import RngStream

DURATION = 15.0


def run_pair(base_rtt: float, queue_bytes: int) -> tuple[float, float]:
    results = []
    for scheme in ("ace", "webrtc-star"):
        trace = make_wifi_trace(RngStream(3, "trace"), duration=DURATION + 10)
        cfg = SessionConfig(duration=DURATION, seed=8, base_rtt=base_rtt,
                            queue_capacity_bytes=queue_bytes,
                            initial_bwe_bps=6e6)
        metrics = build_session(scheme, trace, cfg).run()
        results.append(metrics.p95_latency())
    return results[0], results[1]


def main() -> None:
    print("ACE P95 latency vs WebRTC* across network conditions\n")

    print("RTT sweep (100 KB buffer):")
    for rtt_ms in (10, 20, 40, 80, 160):
        ace, star = run_pair(rtt_ms / 1000, 100_000)
        cut = (1 - ace / star) * 100
        print(f"  RTT {rtt_ms:>3} ms: ACE {ace * 1000:6.1f} ms  "
              f"WebRTC* {star * 1000:6.1f} ms  (cut {cut:4.1f}%)")

    print("\nBuffer sweep (30 ms RTT):")
    for buf_kb in (30, 60, 100, 300):
        ace, star = run_pair(0.030, buf_kb * 1000)
        cut = (1 - ace / star) * 100
        print(f"  buffer {buf_kb:>3} KB: ACE {ace * 1000:6.1f} ms  "
              f"WebRTC* {star * 1000:6.1f} ms  (cut {cut:4.1f}%)")

    print("\nExpected shape: the relative win grows as RTT shrinks "
          "(pacing dominates the tail) and holds across buffer sizes "
          "(ACE-N adapts the burst to the buffer).")


if __name__ == "__main__":
    main()
