#!/usr/bin/env python
"""Two RTC flows on one bottleneck: does ACE play fair with a co-flow?

The paper measures fairness against web traffic; this example asks the
RTC-vs-RTC question. Two sender/receiver pairs share a single 30 Mbps
drop-tail bottleneck: first two identical ACE flows, then ACE against a
paced WebRTC* flow.

Run:  python examples/multi_flow.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installing
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.net.trace import BandwidthTrace
from repro.rtc import FlowSpec, MultiFlowRtcSession, SessionConfig

LINK_MBPS = 30.0
#: fair-share convergence is a multi-GCC-cycle process; give it time
DURATION = 30.0


def flow_rate_mbps(metrics) -> float:
    sizes = [f.size_bytes for f in metrics.frames[-120:]]
    return float(np.mean(sizes) * 8 * 30 / 1e6) if sizes else 0.0


def run_pair(name_a: str, name_b: str) -> None:
    trace = BandwidthTrace.constant(LINK_MBPS * 1e6, duration=DURATION + 10)
    session = MultiFlowRtcSession(
        [FlowSpec(name_a, flow_id=1), FlowSpec(name_b, flow_id=2)],
        trace,
        SessionConfig(duration=DURATION, seed=9, initial_bwe_bps=5e6),
    )
    results = session.run()
    print(f"\n{name_a} vs {name_b} on {LINK_MBPS:.0f} Mbps:")
    for fid, name in ((1, name_a), (2, name_b)):
        m = results[fid]
        print(f"  flow {fid} ({name:<12}): {flow_rate_mbps(m):5.1f} Mbps, "
              f"p95 {m.p95_latency() * 1000:6.1f} ms, "
              f"loss {m.loss_rate() * 100:.2f}%, "
              f"VMAF {m.mean_vmaf():.1f}")


def main() -> None:
    print("RTC-vs-RTC fairness on a shared drop-tail bottleneck")
    run_pair("ace", "ace")
    run_pair("ace", "webrtc-star")
    print("\nExpected shape: identical flows split the link roughly "
          "evenly; against a paced co-flow, ACE takes its share without "
          "starving it.")


if __name__ == "__main__":
    main()
