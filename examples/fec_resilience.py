#!/usr/bin/env python
"""Loss-recovery co-design: ACE with adaptive FEC on lossy wireless links.

The paper's §8 notes that random wireless loss is noise to ACE-N's
loss-triggered halving and leaves FEC co-design as future work. This
example sweeps a random-loss rate and shows the division of labor:

* plain ACE recovers losses by NACK retransmission (a round trip each),
* ACE+FEC repairs most single losses in-place from XOR parity, cutting
  retransmissions and the latency tail on lossy links.

Run:  python examples/fec_resilience.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installing
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.net import make_wifi_trace
from repro.rtc import SessionConfig, build_session
from repro.sim import RngStream

LOSS_RATES = (0.0, 0.01, 0.02, 0.04)
DURATION = 15.0


def run(scheme: str, loss: float):
    trace = make_wifi_trace(RngStream(13, "trace"), duration=DURATION + 10)
    cfg = SessionConfig(duration=DURATION, seed=21, random_loss_rate=loss,
                        initial_bwe_bps=6e6)
    session = build_session(scheme, trace, cfg)
    metrics = session.run()
    return {
        "p95": metrics.p95_latency(),
        "stall": metrics.stall_rate(),
        "rtx": session.sender.retransmissions,
        "repairs": session.receiver.fec.stats.repairs,
        "vmaf": metrics.mean_vmaf(),
    }


def main() -> None:
    print("ACE vs ACE+FEC under random wireless loss\n")
    header = (f"{'loss':>6}{'scheme':>10}{'p95':>10}{'VMAF':>8}"
              f"{'rtx':>7}{'repairs':>9}{'stalls':>9}")
    print(header)
    print("-" * len(header))
    for loss in LOSS_RATES:
        for scheme in ("ace", "ace-fec"):
            r = run(scheme, loss)
            print(f"{loss * 100:>5.0f}%{scheme:>10}"
                  f"{r['p95'] * 1000:>8.1f}ms{r['vmaf']:>8.1f}"
                  f"{r['rtx']:>7}{r['repairs']:>9}"
                  f"{r['stall'] * 100:>8.2f}%")
    print("\nExpected shape: as loss grows, plain ACE's retransmissions "
          "and stalls climb; FEC repairs most losses in-place at a small "
          "parity-bandwidth cost.")


if __name__ == "__main__":
    main()
