#!/usr/bin/env python
"""Quickstart: run ACE against WebRTC* on a synthetic Wi-Fi trace.

Builds a 20-second RTC session per scheme over the same workload (same
trace, same gaming content, same seed) and prints the headline metrics
the paper optimizes: tail latency and perceptual quality.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installing
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.net import make_wifi_trace
from repro.rtc import SessionConfig, build_session
from repro.sim import RngStream


def main() -> None:
    duration = 20.0
    schemes = ("ace", "webrtc-star", "cbr")

    print(f"Streaming {duration:.0f} s of gaming content over synthetic Wi-Fi\n")
    header = f"{'scheme':<14}{'P95 latency':>14}{'mean VMAF':>12}{'loss':>9}{'stalls':>9}"
    print(header)
    print("-" * len(header))

    for scheme in schemes:
        # A fresh trace object per run keeps sessions fully independent;
        # the same seed makes the bandwidth identical across schemes.
        trace = make_wifi_trace(RngStream(7, "trace"), duration=duration + 10)
        session = build_session(
            scheme, trace,
            SessionConfig(duration=duration, seed=42, initial_bwe_bps=6e6),
            category="gaming",
        )
        metrics = session.run()
        print(f"{scheme:<14}"
              f"{metrics.p95_latency() * 1000:>11.1f} ms"
              f"{metrics.mean_vmaf():>12.1f}"
              f"{metrics.loss_rate() * 100:>8.2f}%"
              f"{metrics.stall_rate() * 100:>8.2f}%")

    print("\nACE should sit near WebRTC*'s quality at a fraction of its "
          "tail latency — the paper's Fig. 12 in miniature.")


if __name__ == "__main__":
    main()
