#!/usr/bin/env python
"""Extending the library: plug a custom pacing policy into the pipeline.

Demonstrates the extension surface a downstream user would touch:

1. a custom ``Pacer`` subclass (here, a half-frame burst-then-pace
   hybrid) dropped into a session via ``RtcSession``'s factories;
2. direct use of the ACE-N controller against synthetic feedback, for
   controller-level experiments without the full pipeline;
3. a parameter-sweep loop over the ACE-N threshold ``T``.

Run:  python examples/custom_controller.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installing
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import AceNConfig, AceNController
from repro.net import make_wifi_trace
from repro.net.packet import Packet
from repro.rtc import SessionConfig
from repro.rtc.session import RtcSession
from repro.sim import RngStream, SeedSequenceFactory
from repro.transport.feedback import FeedbackMessage, PacketReport
from repro.transport.pacer.base import Pacer
from repro.video import AbrVbvRateControl, CodecModel, VideoSource
from repro.video.codec.presets import x264_config


class HalfBurstPacer(Pacer):
    """Custom policy: burst the first half of each frame, pace the rest.

    A minimal example of the sub-RTT design space the paper studies —
    it needs only ``_next_send_delay`` (and an ``on_send`` hook).
    """

    def __init__(self, loop, send_fn):
        super().__init__(loop, send_fn)
        self._next_send_time = 0.0

    def _next_send_delay(self, packet: Packet) -> float:
        if packet.frame_packet_index < packet.frame_packet_count / 2:
            return 0.0  # first half: burst
        return max(0.0, self._next_send_time - self.loop.now)

    def on_send(self, packet: Packet) -> None:
        if packet.frame_packet_index >= packet.frame_packet_count / 2:
            serialization = packet.size_bytes * 8 / self.pacing_rate_bps
            self._next_send_time = max(self._next_send_time,
                                       self.loop.now) + serialization


def run_custom_pacer() -> None:
    trace = make_wifi_trace(RngStream(5, "trace"), duration=25.0)
    session = RtcSession(
        trace=trace,
        config=SessionConfig(duration=15.0, seed=2, initial_bwe_bps=6e6),
        source_factory=lambda rngs: VideoSource.from_category(
            "gaming", rngs.stream("source")),
        codec_factory=lambda rngs: CodecModel(x264_config(),
                                              rngs.stream("codec")),
        rate_control_factory=AbrVbvRateControl,
        pacer_factory=HalfBurstPacer,
    )
    metrics = session.run()
    print("custom HalfBurstPacer: "
          f"p95 {metrics.p95_latency() * 1000:.1f} ms, "
          f"VMAF {metrics.mean_vmaf():.1f}, "
          f"loss {metrics.loss_rate() * 100:.2f}%")


def drive_ace_n_directly() -> None:
    """Feed ACE-N synthetic feedback and watch the bucket adapt."""
    ctrl = AceNController(AceNConfig(initial_bucket_bytes=20_000))
    ctrl.on_frame_enqueued(120_000)
    print("\nACE-N bucket under synthetic feedback:")
    t, seq = 0.0, 0
    for step in range(8):
        lossy = step == 4  # one overflow event mid-run
        reports = [
            PacketReport(seq=seq + i, send_time=t + i * 0.004,
                         arrival_time=t + i * 0.004 + 0.02, size_bytes=1200)
            for i in range(3)
        ]
        message = FeedbackMessage(created_at=t, reports=reports,
                                  nacked_seqs=[seq + 99] if lossy else [],
                                  highest_seq=seq + 2)
        ctrl.on_feedback(message, now=t, reverse_delay=0.01)
        print(f"  t={t:.2f}s bucket={ctrl.bucket_bytes / 1000:6.1f} KB"
              + ("   <- loss, halved" if lossy else ""))
        seq += 3
        t += 0.05


def sweep_threshold() -> None:
    print("\nACE-N threshold sweep (full pipeline):")
    from repro.rtc import build_session
    for t_packets in (7.5, 15.0):
        trace = make_wifi_trace(RngStream(5, "trace"), duration=25.0)
        session = build_session(
            "ace", trace, SessionConfig(duration=15.0, seed=2,
                                        initial_bwe_bps=6e6),
            ace_n_config=AceNConfig(threshold_packets=t_packets),
        )
        m = session.run()
        print(f"  T={t_packets:4.1f} pkts: p95 {m.p95_latency() * 1000:6.1f} ms, "
              f"VMAF {m.mean_vmaf():.1f}")


if __name__ == "__main__":
    run_custom_pacer()
    drive_ace_n_directly()
    sweep_threshold()
