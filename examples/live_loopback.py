#!/usr/bin/env python
"""Live mode: the ACE stack in real time over real UDP sockets.

Everything else in this repo runs inside the discrete-event simulator.
This example runs the *same* sender/receiver components on a wall
clock: media packets travel through actual UDP datagram sockets on
loopback, timers are real asyncio timers, and an in-process impairment
shim stands in for the paper's Mahimahi bottleneck (8 Mbps, 30 ms RTT,
0.5% random loss here).

Each scheme streams for a few wall-clock seconds, so this example takes
roughly ``DURATION x len(SCHEMES)`` seconds to finish.

Run:  python examples/live_loopback.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installing
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.live import LiveConfig, run_live
from repro.net.trace import BandwidthTrace

DURATION = 5.0
SCHEMES = ("ace", "webrtc-star")


def main() -> None:
    trace = BandwidthTrace.constant(8e6, duration=DURATION + 10)
    config = LiveConfig(
        duration=DURATION,
        base_rtt=0.03,
        random_loss_rate=0.005,
        seed=7,
    )

    print(f"Streaming {DURATION:.0f} s per scheme over UDP loopback "
          f"(8 Mbps bottleneck, 30 ms RTT, 0.5% loss)\n")
    header = (f"{'scheme':<14}{'P95 latency':>14}{'mean VMAF':>12}"
              f"{'loss':>9}{'rtx':>7}{'fps':>7}")
    print(header)
    print("-" * len(header))

    for scheme in SCHEMES:
        metrics = run_live(scheme, config=config, trace=trace)
        displayed = sum(1 for f in metrics.frames
                        if f.displayed_at is not None)
        print(f"{scheme:<14}"
              f"{metrics.p95_latency() * 1000:>11.1f} ms"
              f"{metrics.mean_vmaf():>12.1f}"
              f"{metrics.loss_rate():>8.2%}"
              f"{metrics.packets_retransmitted:>7d}"
              f"{displayed / DURATION:>7.1f}")

    print("\nSame control logic as the simulator, but with real socket "
          "latency and OS timer jitter in the loop.")


if __name__ == "__main__":
    main()
