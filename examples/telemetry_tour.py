#!/usr/bin/env python
"""Telemetry tour: instrument one session, inspect where the time went.

Runs a short ACE session with the ``repro.obs`` telemetry subsystem
enabled, then:

* prints the per-stage span timeline of the worst end-to-end frame
  (capture -> encode -> pacer -> wire -> reassembly -> display),
* shows the frame-latency histogram the registry aggregated,
* writes the full JSONL event log and a Prometheus-style snapshot
  next to this script (``telemetry_tour_out/``).

Run:  python examples/telemetry_tour.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installing
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.net import make_wifi_trace
from repro.obs import render_span_timeline, write_export_dir
from repro.rtc import SessionConfig, build_session
from repro.sim import RngStream


def main() -> None:
    duration = 10.0
    trace = make_wifi_trace(RngStream(7, "trace"), duration=duration + 10)
    session = build_session(
        "ace", trace, SessionConfig(duration=duration, seed=42),
        category="gaming")
    telemetry = session.enable_telemetry()
    metrics = session.run()

    print(f"ACE over synthetic Wi-Fi, {duration:.0f} s: "
          f"{len(metrics.frames)} frames, "
          f"{len(telemetry.events)} telemetry records\n")

    worst = telemetry.spans.worst_e2e()
    print("worst end-to-end frame:")
    print(render_span_timeline(worst))

    print("\nframe e2e latency histogram:")
    hist = telemetry.registry.histogram("frame.e2e_s")
    for bound, cumulative in hist.cumulative():
        label = "+Inf" if bound == float("inf") else f"{bound * 1000:.0f}ms"
        print(f"  <= {label:>6}  {cumulative:4d} frames")

    breakdown = metrics.latency_breakdown()
    print("\nmean latency decomposition (paper Fig. 2):")
    for component, seconds in breakdown.items():
        print(f"  {component:<8} {seconds * 1000:7.2f} ms")

    out_dir = Path(__file__).resolve().parent / "telemetry_tour_out"
    jsonl, snapshot = write_export_dir(telemetry, out_dir)
    print(f"\nwrote {jsonl}")
    print(f"wrote {snapshot}")


if __name__ == "__main__":
    main()
