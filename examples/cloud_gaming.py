#!/usr/bin/env python
"""Cloud gaming under weak networks — the paper's production scenario.

Streams 60 fps gaming content over canteen/coffee-shop/airport-style
weak-network traces (the Table 3 setting) and compares the production
engine's two legacy policies (AlwaysPace / AlwaysBurst) against ACE-N,
reporting the user-experience metrics the paper tracks: stall rate,
average latency, and received frame rate.

Run:  python examples/cloud_gaming.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installing
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.net import make_weak_network_trace
from repro.rtc import SessionConfig, build_session
from repro.sim import RngStream

VENUES = ("canteen", "coffee_shop", "airport")
SCHEMES = ("ace-n-prod", "always-pace", "always-burst")
DURATION = 20.0


def run_scheme(scheme: str) -> dict:
    stalls, latencies, fps = [], [], []
    for venue in VENUES:
        trace = make_weak_network_trace(
            RngStream(99, f"weak.{venue}"), duration=DURATION + 10, venue=venue)
        session = build_session(
            scheme, trace,
            SessionConfig(duration=DURATION, seed=11, fps=60.0,
                          initial_bwe_bps=6e6,
                          # shared-medium contention: long burst trains
                          # collide with competing stations in the venue
                          contention_loss_rate=0.05,
                          # venue APs are bufferbloated
                          queue_capacity_bytes=500_000),
            category="gaming",
        )
        metrics = session.run()
        stalls.append(metrics.stall_rate())
        latencies.append(metrics.mean_latency())
        fps.append(metrics.received_fps())
    return {
        "stall": float(np.mean(stalls)),
        "latency": float(np.mean(latencies)),
        "fps": float(np.mean(fps)),
    }


def main() -> None:
    print("60 fps cloud gaming over weak networks "
          f"({', '.join(VENUES)})\n")
    header = f"{'method':<14}{'stall rate':>12}{'avg latency':>14}{'recv fps':>10}"
    print(header)
    print("-" * len(header))
    results = {scheme: run_scheme(scheme) for scheme in SCHEMES}
    for scheme, r in results.items():
        print(f"{scheme:<14}{r['stall'] * 100:>11.2f}%"
              f"{r['latency'] * 1000:>11.1f} ms{r['fps']:>10.1f}")

    acen, burst = results["ace-n-prod"], results["always-burst"]
    print(f"\nACE-N vs AlwaysBurst: {acen['latency'] / burst['latency']:.2f}x "
          f"latency, {acen['stall'] / max(burst['stall'], 1e-9):.2f}x stalls "
          "(paper Table 3: dramatically fewer stalls at far lower latency).")


if __name__ == "__main__":
    main()
