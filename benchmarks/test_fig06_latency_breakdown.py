"""Fig. 6 — latency breakdown during stall vs non-stall periods.

Paper (production measurement): pacing latency during stall events is
~60% higher than without stalls and larger than the network delay,
while coding latency stays flat — the correlation that motivates the
work. Reproduced by attributing each stall event (a display gap above
100 ms) to the frame that ended it: those frames carry the latency
accumulated during the stall, and their component breakdown is compared
against ordinary frames.
"""

import numpy as np

from repro.bench import fmt_ms, print_table
from repro.bench.workloads import once, run_baseline, trace_library
from repro.rtc.metrics import STALL_THRESHOLD_S


def classify_frames(metrics):
    """Yield (is_stall_frame, frame) in display order."""
    frames = sorted(metrics.displayed_frames(), key=lambda f: f.displayed_at)
    for prev, cur in zip(frames, frames[1:]):
        gap = cur.displayed_at - prev.displayed_at
        yield gap > STALL_THRESHOLD_S, cur


def run_experiment():
    groups = {"stall": {"encode": [], "pacing": [], "network": []},
              "no-stall": {"encode": [], "pacing": [], "network": []}}
    for trace in trace_library().by_class("wifi") + trace_library().by_class("4g"):
        metrics = run_baseline("webrtc-star", trace, duration=25.0)
        for is_stall, f in classify_frames(metrics):
            key = "stall" if is_stall else "no-stall"
            groups[key]["encode"].append(f.encode_time)
            groups[key]["pacing"].append(f.pacing_latency or 0.0)
            groups[key]["network"].append(f.network_latency or 0.0)
    # Medians: the no-stall pool contains the *plateaus* of backlog
    # episodes (steadily-late frames display at regular intervals), whose
    # extreme pacing values would swamp a mean — the typical-frame
    # comparison is what the paper's 2 s-interval averages capture.
    return {
        key: {comp: float(np.median(vals)) if vals else float("nan")
              for comp, vals in comps.items()}
        for key, comps in groups.items()
    }


def test_fig06_latency_breakdown(benchmark):
    result = once(benchmark, run_experiment)
    print_table(
        "Fig. 6: median latency breakdown, stall vs no-stall frames "
        "(paper: pacing +60% during stalls, coding flat)",
        ["component", "no-stall ms", "stall ms", "ratio"],
        [[comp,
          fmt_ms(result["no-stall"][comp]),
          fmt_ms(result["stall"][comp]),
          f"{result['stall'][comp] / max(result['no-stall'][comp], 1e-9):.2f}x"]
         for comp in ("encode", "pacing", "network")],
    )
    pacing_ratio = result["stall"]["pacing"] / result["no-stall"]["pacing"]
    encode_ratio = result["stall"]["encode"] / result["no-stall"]["encode"]
    assert pacing_ratio > 1.3, "pacing latency must be elevated during stalls"
    assert encode_ratio < 1.3, "coding latency stays flat across stall state"
    assert result["stall"]["pacing"] > result["stall"]["network"], \
        "during stalls pacing exceeds network delay"
