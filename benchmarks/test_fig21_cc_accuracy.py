"""Fig. 21 — interaction with congestion control (GCC and BBR).

Paper: measured as the ratio of estimated to actual bandwidth at 10 ms
intervals, ACE's bandwidth-estimation accuracy matches the pacing
method for both GCC and BBR — no negative interference.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once, run_baseline, trace_library


def accuracy(metrics):
    samples = metrics.bwe_accuracy_samples(bin_s=0.01)
    steady = samples[len(samples) // 5:]
    return float(np.median(steady)), float(np.mean(steady))


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    out = {}
    for cc in ("gcc", "bbr"):
        ace = run_baseline("ace", trace, duration=25.0, cc_override=cc)
        pace = run_baseline("webrtc-star", trace, duration=25.0, cc_override=cc)
        out[cc] = {"ace": accuracy(ace), "pace": accuracy(pace)}
    return out


def test_fig21_cc_accuracy(benchmark):
    r = once(benchmark, run_experiment)
    print_table(
        "Fig. 21: BWE / bandwidth accuracy by CCA "
        "(paper: ACE comparable to pacing for both GCC and BBR)",
        ["CCA", "scheme", "median BWE/BW", "mean BWE/BW"],
        [[cc, scheme, f"{v[0]:.2f}", f"{v[1]:.2f}"]
         for cc, schemes in r.items() for scheme, v in schemes.items()],
    )
    for cc, schemes in r.items():
        ace_med, pace_med = schemes["ace"][0], schemes["pace"][0]
        assert abs(ace_med - pace_med) < 0.35, \
            f"{cc}: ACE must not degrade estimation accuracy materially"
