"""Fig. 13 — comparison across video content categories.

Paper: ACE cuts latency ~70% on high-motion Gaming while matching
WebRTC*'s quality; on static Lecture content frame sizes are stable, so
the gains (and CBR's quality loss) shrink.

The (baseline x category) grid runs through the parallel runner
(``REPRO_JOBS=N`` fans it across processes) with on-disk result
caching; cache counters are printed with the table.
"""

import os

from repro.analysis import ResultCache
from repro.bench import fmt_ms, print_table
from repro.bench.parallel import ParallelRunner, run_grid
from repro.bench.workloads import once, trace_library

CATEGORIES = ("gaming", "sports", "vlog", "music", "lecture")
BASELINES = ("ace", "webrtc-star", "cbr")
JOBS = int(os.environ.get("REPRO_JOBS", "1"))


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    runner = ParallelRunner(jobs=JOBS, cache=ResultCache())
    grid = run_grid(list(BASELINES), [trace], seeds=(3,),
                    categories=CATEGORIES, duration=25.0, runner=runner)
    results = {
        cat: {
            name: (grid[(name, trace.name, 3, cat)].p95_latency(),
                   grid[(name, trace.name, 3, cat)].mean_vmaf())
            for name in BASELINES
        }
        for cat in CATEGORIES
    }
    return results, runner.counters()


def test_fig13_video_categories(benchmark):
    results, counters = once(benchmark, run_experiment)
    rows = []
    for cat, by_name in results.items():
        ace, star, cbr = by_name["ace"], by_name["webrtc-star"], by_name["cbr"]
        cut = 1 - ace[0] / star[0]
        rows.append([cat, fmt_ms(ace[0]), fmt_ms(star[0]), fmt_ms(cbr[0]),
                     f"{cut * 100:.0f}%", f"{ace[1]:.1f}", f"{star[1]:.1f}",
                     f"{cbr[1]:.1f}"])
    print_table(
        "Fig. 13: per-category P95 latency and VMAF "
        "(paper: biggest ACE gains on gaming, smallest on lecture) "
        f"({counters})",
        ["category", "ACE p95", "WebRTC* p95", "CBR p95",
         "ACE cut", "ACE VMAF", "WebRTC* VMAF", "CBR VMAF"],
        rows,
    )
    cut = {cat: 1 - v["ace"][0] / v["webrtc-star"][0] for cat, v in results.items()}
    assert cut["gaming"] > 0.25, "large latency cut on gaming"
    assert cut["gaming"] > cut["lecture"] - 0.10, \
        "gains on dynamic content comparable to static content"
    # CBR's quality deficit shrinks from gaming to lecture
    deficit = {cat: v["webrtc-star"][1] - v["cbr"][1] for cat, v in results.items()}
    assert deficit["gaming"] > deficit["lecture"] - 1.0
    for cat, v in results.items():
        assert v["ace"][1] > v["webrtc-star"][1] - 6.0, \
            f"{cat}: ACE holds the quality tier"
