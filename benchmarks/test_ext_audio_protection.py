"""Extension — audio protection under video burstiness.

RTC sessions multiplex latency-critical audio with the video stream.
WebRTC's pacer gives audio strict priority, so the video pacing backlog
that the paper attacks hurts audio only through head-of-line blocking
of the packet currently serializing. This bench quantifies mouth-to-ear
audio delay under each video sending policy: it must stay
conversational (<150 ms, ITU-T G.114) regardless of the video scheme,
while the video latencies spread exactly as in Fig. 12.
"""

from repro.bench import fmt_ms, print_table
from repro.bench.workloads import once, trace_library
from repro.rtc.baselines import build_session
from repro.rtc.session import SessionConfig

SCHEMES = ("ace", "webrtc-star", "cbr", "always-burst")


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    results = {}
    for name in SCHEMES:
        cfg = SessionConfig(duration=20.0, seed=3, audio=True,
                            initial_bwe_bps=6e6)
        session = build_session(name, trace, cfg)
        metrics = session.run()
        results[name] = {
            "audio_p95": session.audio_receiver.p95_delay(),
            "audio_rx": session.audio_receiver.stats.received,
            "video_p95": metrics.p95_latency(),
        }
    return results


def test_ext_audio_protection(benchmark):
    results = once(benchmark, run_experiment)
    print_table(
        "Extension: mouth-to-ear audio delay vs video sending policy "
        "(audio priority shields speech from video backlog)",
        ["video scheme", "audio p95", "video p95", "audio packets"],
        [[n, fmt_ms(v["audio_p95"]), fmt_ms(v["video_p95"]),
          str(v["audio_rx"])] for n, v in results.items()],
    )
    for name, v in results.items():
        assert v["audio_rx"] > 800, f"{name}: audio must flow"
        assert v["audio_p95"] < 0.150, \
            f"{name}: audio must stay conversational"
        assert v["audio_p95"] < v["video_p95"], \
            f"{name}: priority must shield audio from video backlog"
