"""Fig. 7 — pacing latency's share of total delay vs RTT and total latency.

Paper: (a) sweeping RTT from 160 ms down to 10 ms, pacing latency
gradually becomes the dominant component of long-tail frames; (b) at a
fixed 20 ms RTT, pacing accounts for over 60% of total delay once the
overall latency reaches 200 ms.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once, run_baseline, trace_library
from repro.rtc.session import SessionConfig

RTTS = (0.160, 0.080, 0.040, 0.020, 0.010)


def components_of_tail(metrics, latency_floor=0.2):
    tail = [f for f in metrics.displayed_frames()
            if f.e2e_latency and f.e2e_latency > latency_floor]
    if not tail:
        return None
    pacing = float(np.mean([f.pacing_latency or 0 for f in tail]))
    network = float(np.mean([f.network_latency or 0 for f in tail]))
    encode = float(np.mean([f.encode_time for f in tail]))
    total = float(np.mean([f.e2e_latency for f in tail]))
    return pacing, network, encode, total, len(tail)


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    sweep = {}
    for rtt in RTTS:
        cfg = SessionConfig(duration=25.0, seed=3, base_rtt=rtt,
                            initial_bwe_bps=6e6)
        metrics = run_baseline("webrtc-star", trace, config=cfg)
        sweep[rtt] = components_of_tail(metrics)

    # (b) fixed low RTT, bucket frames by total latency
    cfg = SessionConfig(duration=25.0, seed=3, base_rtt=0.020,
                        initial_bwe_bps=6e6)
    metrics = run_baseline("webrtc-star", trace, config=cfg)
    buckets = {}
    for f in metrics.displayed_frames():
        lat = f.e2e_latency
        if lat is None:
            continue
        key = min(int(lat / 0.1), 4)  # 0-100, 100-200, ..., 400+
        buckets.setdefault(key, []).append(f)
    shares = {}
    for key, frames in sorted(buckets.items()):
        pacing = np.mean([f.pacing_latency or 0 for f in frames])
        total = np.mean([f.e2e_latency for f in frames])
        shares[key] = (float(pacing / total), len(frames))
    return sweep, shares


def test_fig07_pacing_contribution(benchmark):
    sweep, shares = once(benchmark, run_experiment)
    rows = []
    for rtt, comps in sweep.items():
        if comps is None:
            rows.append([f"{rtt * 1000:.0f}", "-", "-", "-", "0"])
            continue
        pacing, network, encode, total, n = comps
        rows.append([f"{rtt * 1000:.0f}", f"{pacing / total * 100:.0f}%",
                     f"{network / total * 100:.0f}%",
                     f"{encode / total * 100:.0f}%", str(n)])
    print_table(
        "Fig. 7(a): component share of >200 ms frames vs RTT "
        "(paper: pacing dominates as RTT shrinks)",
        ["RTT ms", "pacing", "network", "encode", "tail frames"],
        rows,
    )
    print_table(
        "Fig. 7(b): pacing share vs total latency at RTT=20 ms "
        "(paper: >60% at 200 ms)",
        ["latency bucket", "pacing share", "frames"],
        [[f"{k * 100}-{k * 100 + 100} ms", f"{s * 100:.0f}%", str(n)]
         for k, (s, n) in shares.items()],
    )
    # pacing share at the lowest RTT must exceed the share at the highest
    lo = sweep[0.010]
    hi = sweep[0.160]
    if lo is not None and hi is not None:
        assert lo[0] / lo[3] > hi[0] / hi[3]
    # at 20 ms RTT, the 200 ms+ buckets are pacing-dominated
    big_buckets = [s for k, (s, n) in shares.items() if k >= 2 and n >= 5]
    if big_buckets:
        assert max(big_buckets) > 0.5
