"""Fig. 20 — GCC's reaction to a sudden bandwidth drop, with and without ACE.

Paper: the BWE reaction curves of ACE and the pacing baseline nearly
overlap after a sharp drop — ACE's bursts do not blunt the congestion
controller's responsiveness.
"""

import numpy as np

from repro.bench import print_series, print_table
from repro.bench.workloads import once, run_baseline
from repro.net.trace import make_step_trace

DROP_AT = 10.0


def bwe_at(history, t):
    value = history[0][1]
    for ts, v in history:
        if ts > t:
            break
        value = v
    return value


def reaction_metrics(metrics):
    hist = sorted(metrics.bwe_history)
    before = np.mean([v for t, v in hist if DROP_AT - 2 < t < DROP_AT])
    # time until the estimate falls below half its pre-drop value
    settle = None
    for t, v in hist:
        if t > DROP_AT and v < 0.5 * before:
            settle = t - DROP_AT
            break
    after = np.mean([v for t, v in hist if DROP_AT + 4 < t < DROP_AT + 8])
    return before, after, settle, hist


def run_experiment():
    trace = make_step_trace(high_mbps=25, low_mbps=5, step_at=DROP_AT,
                            duration=30.0)
    ace = run_baseline("ace", trace, duration=20.0)
    pace = run_baseline("webrtc-star", trace, duration=20.0)
    return {"ace": reaction_metrics(ace), "pace": reaction_metrics(pace)}


def test_fig20_bandwidth_drop(benchmark):
    r = once(benchmark, run_experiment)
    rows = []
    for name, (before, after, settle, _) in r.items():
        rows.append([name, f"{before / 1e6:.1f}", f"{after / 1e6:.1f}",
                     f"{settle:.2f}s" if settle else "n/a"])
    print_table(
        "Fig. 20: GCC reaction to a 25->5 Mbps drop at t=10 s "
        "(paper: ACE and Pace curves nearly overlap)",
        ["scheme", "BWE before (Mbps)", "BWE after (Mbps)", "time to halve"],
        rows,
    )
    ts = [DROP_AT + dt for dt in (0.5, 1, 2, 3, 4)]
    print_series("BWE after the drop (ace)", ts,
                 [bwe_at(sorted(r['ace'][3]), t) / 1e6 for t in ts],
                 "time s", "Mbps")
    for name, (before, after, settle, _) in r.items():
        assert after < 0.6 * before, f"{name}: estimate must fall after the drop"
        assert settle is not None and settle < 5.0, f"{name}: must react quickly"
    # similar reaction speed: within 2.5 s of each other
    assert abs(r["ace"][2] - r["pace"][2]) < 2.5
