"""Fig. 12 robustness — the headline tradeoff aggregated across seeds.

The single-seed Fig. 12 bench shows the frontier; this companion checks
the claim survives workload randomness: ACE's P95 cut versus WebRTC*
must hold on every paired (trace, seed) workload, and the aggregate cut
must stay large.

The (baseline x trace x seed) grid runs through the parallel runner —
set ``REPRO_JOBS=N`` to fan it across processes (results are identical
to serial) — and memoizes per-cell results on disk, so re-runs while
iterating on analysis code are near-instant (``REPRO_CACHE=off`` to
force fresh sessions). Cache counters are printed with the results.
"""

import os

from repro.analysis import ResultCache, RunResult, aggregate, paired_compare, \
    render_aggregate
from repro.bench.parallel import ParallelRunner, run_grid
from repro.bench.workloads import once, trace_library

BASELINES = ("ace", "webrtc-star", "cbr")
SEEDS = (3, 11)
CLASSES = ("wifi", "5g")
JOBS = int(os.environ.get("REPRO_JOBS", "1"))


def run_experiment():
    traces = [trace_library().by_class(cls)[0] for cls in CLASSES]
    class_of = {trace.name: cls for cls, trace in zip(CLASSES, traces)}
    runner = ParallelRunner(jobs=JOBS, cache=ResultCache())
    grid = run_grid(list(BASELINES), traces, seeds=SEEDS, duration=25.0,
                    runner=runner)
    results = [
        RunResult.from_metrics(metrics, baseline=name,
                               trace=class_of[trace_name], seed=seed)
        for (name, trace_name, seed, _cat), metrics in grid.items()
    ]
    return results, runner.counters()


def test_fig12_multiseed(benchmark):
    results, counters = once(benchmark, run_experiment)
    print()
    print("=== Fig. 12 aggregated over seeds "
          f"{SEEDS} x traces {CLASSES} ({counters}) ===")
    print(render_aggregate(aggregate(results)))
    latency = paired_compare(results, "ace", "webrtc-star",
                             metric="p95_latency")
    quality = paired_compare(results, "webrtc-star", "ace",
                             metric="mean_vmaf")
    print(f"\nACE vs WebRTC* p95: mean diff {latency.mean_diff * 1000:+.1f} ms "
          f"({latency.wins}/{latency.n} workloads won)")
    assert latency.n == len(SEEDS) * len(CLASSES)
    assert latency.consistent, \
        "ACE must beat WebRTC* P95 on every paired workload"
    assert latency.mean_diff < -0.05, "aggregate cut stays large (>50 ms)"
    # quality: ACE within the WebRTC* tier on average (diff < 5 VMAF)
    assert quality.mean_diff < 5.0
