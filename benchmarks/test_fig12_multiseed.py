"""Fig. 12 robustness — the headline tradeoff aggregated across seeds.

The single-seed Fig. 12 bench shows the frontier; this companion checks
the claim survives workload randomness: ACE's P95 cut versus WebRTC*
must hold on every paired (trace, seed) workload, and the aggregate cut
must stay large.
"""

from repro.analysis import RunResult, aggregate, paired_compare, render_aggregate
from repro.bench.workloads import once, run_baseline, trace_library

BASELINES = ("ace", "webrtc-star", "cbr")
SEEDS = (3, 11)
CLASSES = ("wifi", "5g")


def run_experiment():
    results = []
    for cls in CLASSES:
        trace = trace_library().by_class(cls)[0]
        for seed in SEEDS:
            for name in BASELINES:
                metrics = run_baseline(name, trace, duration=25.0, seed=seed)
                results.append(RunResult.from_metrics(
                    metrics, baseline=name, trace=cls, seed=seed))
    return results


def test_fig12_multiseed(benchmark):
    results = once(benchmark, run_experiment)
    print()
    print("=== Fig. 12 aggregated over seeds "
          f"{SEEDS} x traces {CLASSES} ===")
    print(render_aggregate(aggregate(results)))
    latency = paired_compare(results, "ace", "webrtc-star",
                             metric="p95_latency")
    quality = paired_compare(results, "webrtc-star", "ace",
                             metric="mean_vmaf")
    print(f"\nACE vs WebRTC* p95: mean diff {latency.mean_diff * 1000:+.1f} ms "
          f"({latency.wins}/{latency.n} workloads won)")
    assert latency.n == len(SEEDS) * len(CLASSES)
    assert latency.consistent, \
        "ACE must beat WebRTC* P95 on every paired workload"
    assert latency.mean_diff < -0.05, "aggregate cut stays large (>50 ms)"
    # quality: ACE within the WebRTC* tier on average (diff < 5 VMAF)
    assert quality.mean_diff < 5.0