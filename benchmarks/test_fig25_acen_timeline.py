"""Fig. 25 — ACE-N adaptive pacing deep dive (timeline).

Paper (1-second window): while the BWE underestimates, frames burst
(sharp spikes in network-buffer occupancy) with a large token bucket;
when the predicted queue exceeds the threshold T the bucket shrinks and
the send pattern degrades to pacing; once the queue drains, fast
recovery restores the bucket — one full increase/decrease cycle.
"""

import numpy as np

from repro.bench import print_series, print_table
from repro.bench.workloads import once, run_baseline, trace_library


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    _, session = run_baseline("ace-n", trace, duration=25.0,
                              return_session=True)
    acen = session.sender.ace_n
    decisions = acen.decisions
    buckets = [(d.time, d.bucket_bytes) for d in decisions]
    queues = [(e.time, e.queue_bytes) for e in acen.queue_estimator.estimates]
    reasons = {}
    for d in decisions:
        reasons[d.reason] = reasons.get(d.reason, 0) + 1
    return {
        "buckets": buckets,
        "queues": queues,
        "reasons": reasons,
        "threshold": acen.config.threshold_bytes,
    }


def test_fig25_acen_timeline(benchmark):
    r = once(benchmark, run_experiment)
    times = [t for t, _ in r["buckets"]]
    sizes = [b / 1000 for _, b in r["buckets"]]
    print_series("Fig. 25(c): token bucket size over time (KB)",
                 times, sizes, "time s", "bucket KB")
    qt = [t for t, _ in r["queues"]]
    qv = [q / 1000 for _, q in r["queues"]]
    print_series("Fig. 25(b): estimated network queue (KB, threshold "
                 f"T={r['threshold'] / 1000:.1f} KB)", qt, qv,
                 "time s", "est queue KB")
    print_table(
        "Fig. 25: adaptation events",
        ["reason", "count"],
        [[k, str(v)] for k, v in sorted(r["reasons"].items())],
    )
    assert "additive-increase" in r["reasons"], "probing must occur"
    decrease_events = (r["reasons"].get("queue-threshold", 0)
                       + r["reasons"].get("loss-halve", 0))
    assert decrease_events > 0, "the decrease side of the cycle must fire"
    # bucket actually cycles: spread between min and max is substantial
    assert max(sizes) > 2 * min(sizes)
