"""Extension (§8 future work) — co-designing ACE with FEC loss recovery.

The paper notes that random wireless loss is noise to ACE-N's
loss-triggered halving and leaves FEC co-design as future work. This
bench implements it: adaptive XOR-parity FEC repairs random losses
before they trigger NACK round trips, so ACE's latency advantage
survives lossy links while retransmissions drop sharply.
"""

from repro.bench import fmt_ms, fmt_pct, print_table
from repro.bench.workloads import once, run_baseline, trace_library
from repro.rtc.session import SessionConfig

LOSS_RATES = (0.0, 0.01, 0.03)


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    results = {}
    for loss in LOSS_RATES:
        for name in ("ace", "ace-fec"):
            cfg = SessionConfig(duration=20.0, seed=3, random_loss_rate=loss,
                                initial_bwe_bps=6e6)
            metrics, session = run_baseline(name, trace, config=cfg,
                                            return_session=True)
            results[(loss, name)] = {
                "p95": metrics.p95_latency(),
                "vmaf": metrics.mean_vmaf(),
                "rtx": session.sender.retransmissions,
                "repairs": session.receiver.fec.stats.repairs,
                "stall": metrics.stall_rate(),
            }
    return results


def test_ext_fec_codesign(benchmark):
    results = once(benchmark, run_experiment)
    print_table(
        "Extension: ACE + adaptive FEC under random wireless loss "
        "(paper leaves this co-design as future work)",
        ["random loss", "scheme", "p95 ms", "VMAF", "rtx", "repairs", "stall"],
        [[f"{loss * 100:g}%", name, fmt_ms(v["p95"]), f"{v['vmaf']:.1f}",
          str(v["rtx"]), str(v["repairs"]), fmt_pct(v["stall"])]
         for (loss, name), v in results.items()],
    )
    for loss in LOSS_RATES[1:]:
        plain = results[(loss, "ace")]
        fec = results[(loss, "ace-fec")]
        assert fec["repairs"] > 0, "FEC must repair under random loss"
        # The co-design win shows as fewer retransmissions and/or the
        # quality that plain ACE loses when random-loss NACK storms keep
        # its bucket floored (the paper's own §8 caveat).
        assert (fec["rtx"] < plain["rtx"]
                or fec["vmaf"] > plain["vmaf"] + 10), \
            "FEC must either cut retransmissions or rescue quality"
    # without loss, FEC must not break anything (only overhead)
    clean_fec = results[(0.0, "ace-fec")]
    clean = results[(0.0, "ace")]
    assert clean_fec["p95"] < 2.5 * clean["p95"]
