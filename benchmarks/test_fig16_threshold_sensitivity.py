"""Fig. 16 — sensitivity of the ACE-N queue threshold T.

Paper: sweeping T over {7.5, 10, 12.5, 15} packets, all configurations
stay ahead of the baseline envelope; higher T fully utilizes the link
(lower latency) at a slight loss/quality risk — an operator knob, not a
fragile constant.
"""

from repro.bench import fmt_ms, fmt_pct, print_table
from repro.bench.workloads import once, run_baseline, trace_library
from repro.core.ace_n import AceNConfig

THRESHOLDS = (7.5, 10.0, 12.5, 15.0)


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    results = {}
    for t in THRESHOLDS:
        metrics = run_baseline("ace", trace, duration=25.0,
                               ace_n_config=AceNConfig(threshold_packets=t))
        results[t] = (metrics.p95_latency(), metrics.mean_vmaf(),
                      metrics.loss_rate())
    star = run_baseline("webrtc-star", trace, duration=25.0)
    return results, (star.p95_latency(), star.mean_vmaf())


def test_fig16_threshold_sensitivity(benchmark):
    results, star = once(benchmark, run_experiment)
    print_table(
        "Fig. 16: sensitivity of threshold T "
        "(paper: all settings beat the baseline envelope)",
        ["T (packets)", "p95 ms", "VMAF", "loss"],
        [[f"{t:g}", fmt_ms(v[0]), f"{v[1]:.1f}", fmt_pct(v[2])]
         for t, v in results.items()],
    )
    print(f"WebRTC* reference: p95 {fmt_ms(star[0])} ms, VMAF {star[1]:.1f}")
    for t, (p95, vmaf, loss) in results.items():
        assert p95 < star[0], f"T={t}: must beat the paced baseline latency"
        assert vmaf > star[1] - 8.0, f"T={t}: must hold the quality tier"
    # not hypersensitive: best/worst p95 within ~2x
    p95s = [v[0] for v in results.values()]
    assert max(p95s) / min(p95s) < 2.0
