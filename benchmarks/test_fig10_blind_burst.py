"""Fig. 10 — blindly bursting is dangerous when the buffer is unknown.

Paper: with pacing disabled, shrinking the Mahimahi buffer below a
threshold causes a rapid rise in packet loss and tail latency (overflow
plus retransmission storms), while with a sufficient buffer bursting
actually beats pacing. Reproduced by sweeping the drop-tail queue from
1000 packets (1500 B MTU) downward.
"""

from repro.bench import fmt_ms, fmt_pct, print_table
from repro.bench.workloads import once, run_baseline
from repro.net.trace import BandwidthTrace
from repro.rtc.session import SessionConfig

BUFFER_PACKETS = (1000, 300, 100, 50, 25, 10)
MTU = 1500


def run_experiment():
    trace = BandwidthTrace.constant(20e6, duration=60.0)
    results = {}
    for packets in BUFFER_PACKETS:
        cfg = SessionConfig(duration=20.0, seed=5,
                            queue_capacity_bytes=packets * MTU,
                            initial_bwe_bps=8e6)
        metrics = run_baseline("webrtc-nopacer", trace, config=cfg)
        results[packets] = (metrics.loss_rate(), metrics.p95_latency(),
                            metrics.latency_percentile(99))
    # paced reference at the smallest buffer
    cfg = SessionConfig(duration=20.0, seed=5,
                        queue_capacity_bytes=BUFFER_PACKETS[-1] * MTU,
                        initial_bwe_bps=8e6)
    paced = run_baseline("webrtc-star", trace, config=cfg)
    return results, (paced.loss_rate(), paced.p95_latency())


def test_fig10_blind_burst(benchmark):
    results, paced = once(benchmark, run_experiment)
    print_table(
        "Fig. 10: blind bursting vs bottleneck buffer size "
        "(paper: loss and tail latency blow up below a threshold)",
        ["buffer pkts", "loss rate", "p95 ms", "p99 ms"],
        [[str(p), fmt_pct(l), fmt_ms(p95), fmt_ms(p99)]
         for p, (l, p95, p99) in results.items()],
    )
    print(f"paced reference at {BUFFER_PACKETS[-1]} pkts: "
          f"loss {fmt_pct(paced[0])}, p95 {fmt_ms(paced[1])} ms")
    big = results[BUFFER_PACKETS[0]]
    small = results[BUFFER_PACKETS[-1]]
    assert small[0] > 5 * max(big[0], 1e-4), "loss must blow up at tiny buffers"
    # The small-buffer pain is loss + retransmission storms: the extreme
    # tail (p99) blows up even though the median path has no deep queue.
    assert small[2] > big[2], "extreme tail rises as the buffer shrinks"
    assert paced[0] < small[0], "pacing stays safe where bursting overflows"
