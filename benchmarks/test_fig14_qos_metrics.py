"""Fig. 14 — other QoS metrics: latency CDF, loss rate, stall rate.

Paper: ACE achieves the lowest latency across most percentiles (Burst
matches it near p90 but blows up in the extreme tail; Pace is worst
everywhere except the 99.9th); loss sits ~1% — above paced, far below
bursty (>4%); ACE's 100 ms stall rate (~2.4%) is among the lowest,
~16-17% below WebRTC*/WebRTC-B; received fps stays near the source rate.
"""

import numpy as np

from repro.bench import fmt_ms, fmt_pct, print_table
from repro.bench.tables import cdf_points
from repro.bench.workloads import once, run_baselines, trace_library

BASELINES = ("ace", "webrtc-star", "webrtc-b", "cbr", "always-burst")


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    metrics = run_baselines(list(BASELINES), trace, duration=30.0)
    out = {}
    for name, m in metrics.items():
        out[name] = {
            "cdf": cdf_points(m.e2e_latencies()),
            "loss": m.loss_rate(),
            "stall": m.stall_rate(),
            "fps": m.received_fps(),
        }
    return out


def test_fig14_qos_metrics(benchmark):
    results = once(benchmark, run_experiment)
    quantiles = [q for q, _ in results["ace"]["cdf"]]
    print_table(
        "Fig. 14(a): e2e latency CDF (ms) "
        "(paper: ACE lowest through most percentiles)",
        ["percentile"] + list(results),
        [[f"p{q:g}"] + [fmt_ms(dict(results[n]["cdf"])[q]) for n in results]
         for q in quantiles],
    )
    print_table(
        "Fig. 14(b,c): loss rate / stall rate / received fps "
        "(paper: ACE loss ~1%, stall ~2.4%)",
        ["baseline", "loss", "stall", "recv fps"],
        [[n, fmt_pct(v["loss"]), fmt_pct(v["stall"]), f"{v['fps']:.1f}"]
         for n, v in results.items()],
    )
    ace, star, burst = (results[n] for n in ("ace", "webrtc-star", "always-burst"))
    # latency: ACE below Pace at p50/p90/p95
    for q in (50, 90, 95):
        assert dict(ace["cdf"])[q] < dict(star["cdf"])[q]
    # loss ordering: paced < ACE < bursty
    assert star["loss"] <= ace["loss"] + 0.002
    assert ace["loss"] < burst["loss"]
    assert burst["loss"] > 0.02, "blind bursting loses packets heavily"
    # stalls: ACE at/below WebRTC*
    assert ace["stall"] <= star["stall"] * 1.1
    # frame rate near 30 fps for ACE (frame dropping disabled)
    assert results["ace"]["fps"] > 27.0
