"""Fig. 3 — latency impact of oversized frames (timeline example).

Paper: even with the average frame size on target, one oversized frame
(red) drags pacing latency up and the end-to-end latency of subsequent
frames surges with it. Reproduced by correlating per-frame size with
the e2e latency of a paced (WebRTC*) run and printing the worst episode.
"""

import numpy as np

from repro.bench import print_series, print_table
from repro.bench.workloads import once, run_baseline
from repro.net.trace import BandwidthTrace


def run_experiment():
    # A constant-rate link isolates the oversize effect from congestion.
    trace = BandwidthTrace.constant(20e6, duration=60.0)
    metrics = run_baseline("webrtc-star", trace, duration=25.0, seed=9)
    frames = [f for f in metrics.displayed_frames()]
    sizes = np.array([f.size_bytes for f in frames], dtype=float)
    lats = np.array([f.e2e_latency for f in frames])
    mean_size = sizes.mean()
    # find the biggest frame and the latency window around it
    peak = int(np.argmax(sizes))
    window = slice(max(0, peak - 5), min(len(frames), peak + 10))
    return {
        "frame_ids": [f.frame_id for f in frames[window]],
        "rel_sizes": (sizes[window] / mean_size).tolist(),
        "latencies": lats[window].tolist(),
        "corr": float(np.corrcoef(sizes, lats)[0, 1]),
        "peak_rel": float(sizes[peak] / mean_size),
        "lat_before": float(np.mean(lats[max(0, peak - 10):peak])) if peak else 0.0,
        "lat_after": float(np.mean(lats[peak:peak + 5])),
    }


def test_fig03_oversize_latency(benchmark):
    result = once(benchmark, run_experiment)
    print_table(
        "Fig. 3: e2e latency around the most oversized frame "
        "(paper: oversized frame -> latency surge)",
        ["frame", "size/mean", "e2e ms"],
        [[fid, f"{rs:.2f}", f"{lat * 1000:.1f}"]
         for fid, rs, lat in zip(result["frame_ids"], result["rel_sizes"],
                                 result["latencies"])],
    )
    print(f"size-latency correlation: {result['corr']:.3f}")
    assert result["peak_rel"] > 2.0, "corpus should contain an oversized frame"
    assert result["lat_after"] > result["lat_before"], \
        "latency must surge after the oversized frame"
    assert result["corr"] > 0.1, "frame size should correlate with latency"
