"""Fig. 26 — real-world campus Wi-Fi experiment (emulated substitution).

Paper: a 24-hour campus-Wi-Fi test streaming a high-motion gaming
video. ACE's latency matched the low-latency baselines (CBR, Salsify)
while achieving the highest VMAF, on par with WebRTC*; Google Meet held
a stable but mediocre ~66 VMAF (conferencing profile); Salsify had to
drop to 540p (quality below 60). Substituted here by the diurnal
campus-trace generator swept over four times of day.
"""

import numpy as np

from repro.bench import fmt_ms, print_table
from repro.bench.tables import cdf_points
from repro.bench.workloads import once, run_baseline
from repro.net.trace import make_campus_wifi_trace
from repro.sim.rng import RngStream

HOURS = (4.0, 10.0, 16.0, 22.0)
BASELINES = ("ace", "webrtc-star", "cbr", "salsify", "google-meet")


def run_experiment():
    agg = {name: {"lat": [], "vmaf": []} for name in BASELINES}
    for hour in HOURS:
        trace = make_campus_wifi_trace(RngStream(61, f"campus.{hour}"),
                                       duration=120.0, hour_of_day=hour)
        for name in BASELINES:
            m = run_baseline(name, trace, duration=25.0, category="gaming")
            agg[name]["lat"].extend(m.e2e_latencies())
            agg[name]["vmaf"].extend(
                f.quality_vmaf for f in m.displayed_frames())
    return {
        name: {
            "lat_cdf": cdf_points(v["lat"], quantiles=(50, 90, 95, 99)),
            "vmaf_med": float(np.median(v["vmaf"])),
        }
        for name, v in agg.items()
    }


def test_fig26_real_world(benchmark):
    r = once(benchmark, run_experiment)
    print_table(
        "Fig. 26: campus Wi-Fi, 24-hour sweep "
        "(paper: ACE lowest-latency tier with the highest VMAF)",
        ["baseline", "p50 ms", "p95 ms", "median VMAF"],
        [[n, fmt_ms(dict(v["lat_cdf"])[50]), fmt_ms(dict(v["lat_cdf"])[95]),
          f"{v['vmaf_med']:.1f}"] for n, v in r.items()],
    )
    ace = r["ace"]
    star = r["webrtc-star"]
    # latency: ACE well below WebRTC*, near the low-latency baselines
    assert dict(ace["lat_cdf"])[95] < dict(star["lat_cdf"])[95]
    # quality: ACE in the top tier
    assert ace["vmaf_med"] > star["vmaf_med"] - 5.0
    # Google Meet: stable but capped quality on a high-motion stream
    assert r["google-meet"]["vmaf_med"] < ace["vmaf_med"]
