"""Fig. 8 — frame-size variation across video content types.

Paper: with the same real-time encoder, the coefficient of variation of
encoded frame sizes nearly doubles from lecture (~0.56) through vlog to
gaming (~1.03) — the content trend that amplifies pacing latency.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once
from repro.sim.rng import SeedSequenceFactory
from repro.video.codec.presets import make_x264_model
from repro.video.codec.rate_control import AbrVbvRateControl
from repro.video.source import CONTENT_CATEGORIES, VideoSource

BITRATE = 20e6
FPS = 30.0
FRAMES = 3000


def encode_category(category: str):
    rngs = SeedSequenceFactory(51)
    codec = make_x264_model(rngs.stream(f"codec.{category}"))
    source = VideoSource.from_category(category, rngs.stream(f"src.{category}"),
                                       fps=FPS)
    rc = AbrVbvRateControl()
    sizes = []
    for frame in source.frames(FRAMES):
        planned = rc.plan_bytes(codec, frame, BITRATE, FPS)
        encoded = codec.encode(frame, planned, 0)
        rc.on_encoded(encoded.size_bytes, BITRATE, FPS)
        sizes.append(encoded.size_bytes)
    sizes = np.asarray(sizes, dtype=float)
    return float(sizes.std() / sizes.mean()), float(sizes.std() / 1000)


def run_experiment():
    return {cat: encode_category(cat) for cat in CONTENT_CATEGORIES}


def test_fig08_content_variability(benchmark):
    results = once(benchmark, run_experiment)
    print_table(
        "Fig. 8: frame-size variation by content "
        "(paper: CV 0.56 lecture -> 1.03 gaming)",
        ["category", "size CV", "std KB"],
        [[cat, f"{cv:.2f}", f"{std:.1f}"] for cat, (cv, std) in results.items()],
    )
    assert results["lecture"][0] < results["vlog"][0] < results["gaming"][0]
    # roughly-doubling CV from lecture to gaming
    ratio = results["gaming"][0] / results["lecture"][0]
    assert 1.5 <= ratio <= 3.5
