"""Simulator performance benchmarks (actual multi-round timings).

Unlike the figure/table benches (which run an experiment once and print
its reproduction), these measure the library's own hot paths so
regressions in simulation throughput are caught: event-loop dispatch,
token-bucket accounting, packetization, trace lookups, end-to-end
session speed, and the parallel grid runner's scaling.

``scripts/check_perf.py`` compares a ``--benchmark-json`` dump of this
module against the committed ``BENCH_perf_simulator.json`` snapshot and
fails on large regressions.
"""

import os
import time

import pytest

from repro.bench.parallel import run_grid
from repro.core.token_bucket import TokenBucket
from repro.net.trace import BandwidthTrace
from repro.rtc.baselines import build_session
from repro.rtc.session import SessionConfig
from repro.sim.events import EventLoop
from repro.sim.rng import RngStream
from repro.transport.rtp import Packetizer
from repro.video.frame import EncodedFrame

#: opt-in marker: ``pytest benchmarks -m "not perf"`` skips the timing
#: benches (figure reproductions don't need them).
pytestmark = pytest.mark.perf


def test_perf_event_loop_dispatch(benchmark):
    def run_10k_events():
        loop = EventLoop()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                loop.call_later(0.001, tick)

        loop.call_later(0.0, tick)
        loop.drain()
        return count

    assert benchmark(run_10k_events) == 10_000


def test_perf_token_bucket_ops(benchmark):
    def run_ops():
        tb = TokenBucket(rate_bps=10e6, bucket_bytes=50_000, now=0.0)
        t = 0.0
        sent = 0
        for i in range(20_000):
            t += 0.0005
            if tb.consume(1200, t):
                sent += 1
        return sent

    assert benchmark(run_ops) > 0


def test_perf_packetizer(benchmark):
    frame = EncodedFrame(frame_id=0, capture_time=0.0, size_bytes=125_000,
                         encode_time=0.006, quality_vmaf=85.0,
                         complexity_level=0, qp=26.0, satd=1.0,
                         planned_bytes=125_000)

    def packetize_1k_frames():
        pk = Packetizer()
        total = 0
        for _ in range(1_000):
            total += len(pk.packetize(frame))
        return total

    assert benchmark(packetize_1k_frames) >= 100_000


def test_perf_full_session_throughput(benchmark):
    """Wall time to simulate a 5-second ACE session (~150 frames)."""
    trace = BandwidthTrace.constant(20e6, duration=20.0)

    def run_session():
        cfg = SessionConfig(duration=5.0, seed=3, initial_bwe_bps=8e6)
        return len(build_session("ace", trace, cfg).run().frames)

    frames = benchmark.pedantic(run_session, rounds=3, iterations=1)
    assert frames >= 145


def test_perf_batch_session_throughput(benchmark):
    """Batch-engine twin of the session-throughput bench (same workload).

    ``scripts/check_perf.py`` compares this bench against
    ``test_perf_full_session_throughput`` *from the same run* and fails
    when the batch engine's speedup drops below the floor — a
    machine-independent ratio gate. At 20 Mbps the ratio is bounded by
    the shared decision-plane code (congestion control, ACE-N, rate
    control run identically on both engines); the macro-step pair below
    measures the engine's per-packet advantage where packets dominate.
    """
    trace = BandwidthTrace.constant(20e6, duration=20.0)

    def run_session():
        cfg = SessionConfig(duration=5.0, seed=3, initial_bwe_bps=8e6)
        return len(build_session("ace", trace, cfg, engine="batch")
                   .run().frames)

    frames = benchmark.pedantic(run_session, rounds=3, iterations=1)
    assert frames >= 145


#: packet-heavy workload for the macro-step pair: ~110 packets/frame at
#: 100 Mbps, so per-packet machinery dominates the decision plane.
_MACRO_TRACE_BPS = 100e6


def _macro_step_config():
    return SessionConfig(duration=3.0, seed=3, initial_bwe_bps=50e6,
                         max_bwe_bps=100e6)


def test_perf_reference_macro_step(benchmark):
    """Reference engine on the packet-heavy macro-step workload.

    Same-run denominator for the ``test_perf_batch_macro_step`` speedup
    gate in ``scripts/check_perf.py``.
    """
    trace = BandwidthTrace.constant(_MACRO_TRACE_BPS, duration=20.0)

    def run_session():
        return len(build_session("ace", trace, _macro_step_config())
                   .run().frames)

    frames = benchmark.pedantic(run_session, rounds=3, iterations=1)
    assert frames >= 85


def test_perf_batch_macro_step(benchmark):
    """Batch engine on the packet-heavy macro-step workload.

    Each macro step advances the pacer→link→queue pipeline over whole
    bursts between decision boundaries; at ~110 packets/frame that
    replaces ~6 heap events per packet with a handful of array ops per
    burst. Gated at a multiple of the reference twin from the same run.
    """
    trace = BandwidthTrace.constant(_MACRO_TRACE_BPS, duration=20.0)

    def run_session():
        return len(build_session("ace", trace, _macro_step_config(),
                                 engine="batch").run().frames)

    frames = benchmark.pedantic(run_session, rounds=3, iterations=1)
    assert frames >= 85


def test_perf_full_session_telemetry_on(benchmark):
    """Telemetry-enabled twin of the session-throughput bench.

    ``scripts/check_perf.py`` compares this bench against
    ``test_perf_full_session_throughput`` *from the same run* and fails
    when full instrumentation (spans + sampled gauges + event log)
    costs more than the allowed overhead factor — a machine-independent
    gate, unlike the absolute baseline snapshot.
    """
    trace = BandwidthTrace.constant(20e6, duration=20.0)

    def run_session():
        cfg = SessionConfig(duration=5.0, seed=3, initial_bwe_bps=8e6)
        session = build_session("ace", trace, cfg)
        session.enable_telemetry()
        return len(session.run().frames)

    frames = benchmark.pedantic(run_session, rounds=3, iterations=1)
    assert frames >= 145


def test_perf_full_session_profiler_off(benchmark):
    """Session speed after attaching and *detaching* the self-profiler.

    ``scripts/check_perf.py`` holds this bench within a tight factor
    (default 1.05x) of ``test_perf_full_session_throughput`` from the
    same run: ``set_profiler(None)`` must restore the exact unprofiled
    dispatch path, so a profiler that leaks per-event overhead into the
    off state fails the gate.
    """
    trace = BandwidthTrace.constant(20e6, duration=20.0)

    def run_session():
        from repro.obs import LoopProfiler
        cfg = SessionConfig(duration=5.0, seed=3, initial_bwe_bps=8e6)
        session = build_session("ace", trace, cfg)
        session.loop.set_profiler(LoopProfiler())
        session.loop.set_profiler(None)
        return len(session.run().frames)

    frames = benchmark.pedantic(run_session, rounds=3, iterations=1)
    assert frames >= 145


def test_perf_full_session_profile_on(benchmark):
    """Self-profiled twin of the session-throughput bench.

    Not gated pairwise (two perf_counter() calls per event are real
    cost); the absolute snapshot still bounds it. Asserts the profile
    actually observed the run.
    """
    trace = BandwidthTrace.constant(20e6, duration=20.0)

    def run_session():
        from repro.obs import LoopProfiler
        cfg = SessionConfig(duration=5.0, seed=3, initial_bwe_bps=8e6)
        session = build_session("ace", trace, cfg)
        profiler = session.loop.set_profiler(LoopProfiler())
        frames = len(session.run().frames)
        assert profiler.total_events == session.loop.processed
        return frames

    frames = benchmark.pedantic(run_session, rounds=3, iterations=1)
    assert frames >= 145


def test_perf_trace_rate_lookup(benchmark):
    """Sequential ``rate_at`` throughput on a *varying* trace.

    A varying trace forces the monotonic-cursor path (flat traces take a
    constant-rate shortcut), and the lookup pattern mirrors the link's:
    non-decreasing times, wrapping past the trace end into the next loop.
    """
    from repro.net.trace import make_wifi_trace
    trace = make_wifi_trace(RngStream(1, "perf.rate_at"), duration=120.0)
    assert trace._flat_rate is None  # must exercise the cursor machinery

    def lookups():
        rate_at = trace.rate_at
        total = 0.0
        t = 0.0
        for _ in range(200_000):
            t += 0.0015  # ~2.5 trace loops over the run
            total += rate_at(t)
        return total

    assert benchmark(lookups) > 0


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="parallel speedup needs >= 4 cores")
def test_perf_parallel_grid_speedup(benchmark):
    """The process-pool runner must beat serial on a real grid."""
    traces = [
        BandwidthTrace.constant(15e6, duration=10.0, name="flat-15"),
        BandwidthTrace.constant(25e6, duration=10.0, name="flat-25"),
    ]
    grid = dict(baselines=["ace", "webrtc-star"], traces=traces,
                seeds=(3, 11), duration=2.5)

    def timed(jobs):
        start = time.perf_counter()
        out = run_grid(jobs=jobs, **grid)
        return time.perf_counter() - start, out

    serial_s, serial = timed(1)
    parallel_s, parallel = benchmark.pedantic(
        lambda: timed(os.cpu_count()), rounds=1, iterations=1)
    assert list(serial) == list(parallel)
    speedup = serial_s / parallel_s
    print(f"\nparallel grid: serial {serial_s:.2f}s, "
          f"parallel {parallel_s:.2f}s on {os.cpu_count()} cores "
          f"({speedup:.2f}x)")
    assert speedup > 1.5
