"""Simulator performance benchmarks (actual multi-round timings).

Unlike the figure/table benches (which run an experiment once and print
its reproduction), these measure the library's own hot paths so
regressions in simulation throughput are caught: event-loop dispatch,
token-bucket accounting, packetization, and end-to-end session speed.
"""

from repro.core.token_bucket import TokenBucket
from repro.net.trace import BandwidthTrace
from repro.rtc.baselines import build_session
from repro.rtc.session import SessionConfig
from repro.sim.events import EventLoop
from repro.transport.rtp import Packetizer
from repro.video.frame import EncodedFrame


def test_perf_event_loop_dispatch(benchmark):
    def run_10k_events():
        loop = EventLoop()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                loop.call_later(0.001, tick)

        loop.call_later(0.0, tick)
        loop.drain()
        return count

    assert benchmark(run_10k_events) == 10_000


def test_perf_token_bucket_ops(benchmark):
    def run_ops():
        tb = TokenBucket(rate_bps=10e6, bucket_bytes=50_000, now=0.0)
        t = 0.0
        sent = 0
        for i in range(20_000):
            t += 0.0005
            if tb.consume(1200, t):
                sent += 1
        return sent

    assert benchmark(run_ops) > 0


def test_perf_packetizer(benchmark):
    frame = EncodedFrame(frame_id=0, capture_time=0.0, size_bytes=125_000,
                         encode_time=0.006, quality_vmaf=85.0,
                         complexity_level=0, qp=26.0, satd=1.0,
                         planned_bytes=125_000)

    def packetize_1k_frames():
        pk = Packetizer()
        total = 0
        for _ in range(1_000):
            total += len(pk.packetize(frame))
        return total

    assert benchmark(packetize_1k_frames) >= 100_000


def test_perf_full_session_throughput(benchmark):
    """Wall time to simulate a 5-second ACE session (~150 frames)."""
    trace = BandwidthTrace.constant(20e6, duration=20.0)

    def run_session():
        cfg = SessionConfig(duration=5.0, seed=3, initial_bwe_bps=8e6)
        return len(build_session("ace", trace, cfg).run().frames)

    frames = benchmark.pedantic(run_session, rounds=3, iterations=1)
    assert frames >= 145
