"""Fig. 19 — SATD-based relative-size prediction accuracy.

Paper: the predicted relative frame size rho-hat closely tracks the
actual rho, particularly in the oversized range where ACE-C's decisions
matter.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once, run_baseline, trace_library


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    _, session = run_baseline("ace", trace, duration=25.0, return_session=True)
    log = session.sender.ace_c.prediction_log
    pred = np.array([p for p, _ in log])
    actual = np.array([a for _, a in log])
    err = pred - actual
    corr = float(np.corrcoef(pred, actual)[0, 1]) if len(pred) > 2 else 0.0
    # accuracy by actual-size bucket
    buckets = []
    for lo, hi in ((0.0, 0.5), (0.5, 1.0), (1.0, 2.0), (2.0, 100.0)):
        sel = (actual >= lo) & (actual < hi)
        if sel.sum() >= 3:
            buckets.append((f"{lo:g}-{hi:g}", int(sel.sum()),
                            float(np.mean(np.abs(err[sel]))),
                            float(np.mean(err[sel]))))
    return {"n": len(pred), "corr": corr,
            "mae": float(np.mean(np.abs(err))), "buckets": buckets}


def test_fig19_satd_accuracy(benchmark):
    r = once(benchmark, run_experiment)
    print_table(
        "Fig. 19: rho-hat vs rho accuracy "
        "(paper: predictions track actual sizes closely)",
        ["actual rho range", "frames", "MAE", "bias"],
        [[rng, str(n), f"{mae:.3f}", f"{bias:+.3f}"]
         for rng, n, mae, bias in r["buckets"]],
    )
    print(f"n={r['n']}  corr={r['corr']:.3f}  overall MAE={r['mae']:.3f}")
    assert r["n"] > 100
    assert r["corr"] > 0.6, "prediction must track actual sizes"
    assert r["mae"] < 0.5, "mean absolute rho error within half a budget"
