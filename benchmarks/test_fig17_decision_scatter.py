"""Fig. 17 — understanding ACE's joint decisions per frame.

Paper (gaming stream): most frames burst out completely (pacing only
when the network buffer is near overflow); most frames encode at c0 and
only oversized frames (~>1.6x the average) are elevated — the two
actions that jointly smooth the send pattern.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once, run_baseline, trace_library


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    metrics, session = run_baseline("ace", trace, duration=25.0,
                                    return_session=True)
    frames = metrics.frames
    # "burst" = the frame cleared the pacer within half a frame interval
    # (a fully-paced frame takes at least one full interval).
    pacing = np.array([f.pacing_latency if f.pacing_latency is not None else 1.0
                       for f in frames])
    burst_frac = float((pacing < 0.5 / 30.0).mean())
    levels = np.array([f.complexity_level for f in frames])
    elevated = levels > 0
    elevated_frac = float(elevated.mean())
    # Compare frames on their *pre-reduction* demand: elevated frames were
    # already shrunk by (1 - phi), so use the content-difficulty signal.
    satd = np.array([f.satd for f in frames])
    mean_satd = satd.mean()
    rel_elevated = (float((satd[elevated] / mean_satd).mean())
                    if elevated.any() else 0.0)
    rel_base = float((satd[~elevated] / mean_satd).mean())
    return {
        "burst_frac": burst_frac,
        "elevated_frac": elevated_frac,
        "rel_demand_elevated": rel_elevated,
        "rel_demand_base": rel_base,
        "ace_c": session.sender.ace_c.fraction_elevated(),
    }


def test_fig17_decision_scatter(benchmark):
    r = once(benchmark, run_experiment)
    print_table(
        "Fig. 17: ACE per-frame decisions "
        "(paper: most frames burst; only oversized frames elevated)",
        ["quantity", "value"],
        [["frames fully burst", f"{r['burst_frac'] * 100:.1f}%"],
         ["frames elevated (ACE-C)", f"{r['elevated_frac'] * 100:.1f}%"],
         ["mean rel. demand of elevated frames", f"{r['rel_demand_elevated']:.2f}x"],
         ["mean rel. demand of base frames", f"{r['rel_demand_base']:.2f}x"]],
    )
    assert r["burst_frac"] > 0.4, "a large share of frames bursts out " \
        "completely (GCC ramp and congestion episodes pace the rest)"
    assert r["elevated_frac"] < 0.5, "elevation reserved for a minority"
    assert r["rel_demand_elevated"] > r["rel_demand_base"], \
        "elevated frames are the (pre-reduction) demanding ones"
