"""Table 3 — production cloud-gaming experiment (emulated substitution).

Paper: ACE-N on the production RTC engine over weak-network traces
(canteens, coffee shops, airports) at 60 fps game content — vs
AlwaysPace it cuts latency ~15% with slightly better received fps; vs
AlwaysBurst it slashes stall rate (2.89 vs 13.37) and latency (137 vs
323 ms), with ~5.6% better received fps. Substituted here with the
weak-network trace generators, the delivery-rate production CCA, and
the shared-medium contention loss model (long burst trains collide with
competing stations — the venue effect that punishes AlwaysBurst).
"""

import numpy as np

from repro.bench import fmt_ms, fmt_pct, print_table
from repro.bench.workloads import once, run_baseline
from repro.net.trace import make_weak_network_trace
from repro.rtc.session import SessionConfig
from repro.sim.rng import RngStream

VENUES = ("canteen", "coffee_shop", "airport")
SCHEMES = ("ace-n-prod", "always-pace", "always-burst")


def run_experiment():
    agg = {name: {"lat": [], "stall": [], "fps": []} for name in SCHEMES}
    for venue in VENUES:
        trace = make_weak_network_trace(RngStream(71, f"weak.{venue}"),
                                        duration=120.0, venue=venue)
        for name in SCHEMES:
            cfg = SessionConfig(duration=25.0, seed=3, fps=60.0,
                                initial_bwe_bps=6e6,
                                contention_loss_rate=0.05,
                                # venue APs are bufferbloated: a
                                # throughput-chasing burst engine can
                                # stand hundreds of ms of queue in them
                                queue_capacity_bytes=500_000)
            m = run_baseline(name, trace, category="gaming", config=cfg)
            agg[name]["lat"].append(m.mean_latency())
            agg[name]["stall"].append(m.stall_rate())
            agg[name]["fps"].append(m.received_fps())
    return {name: {k: float(np.mean(v)) for k, v in vals.items()}
            for name, vals in agg.items()}


def test_table3_production(benchmark):
    r = once(benchmark, run_experiment)
    print_table(
        "Table 3: production weak-network experiment, 60 fps gaming "
        "(paper: ACE-N 2.89% stall / 137 ms / 56.8 fps; "
        "AlwaysPace 2.96 / 161 / 56.6; AlwaysBurst 13.37 / 323 / 53.8)",
        ["method", "stall rate", "mean latency", "recv fps"],
        [[n, fmt_pct(v["stall"]), fmt_ms(v["lat"]), f"{v['fps']:.1f}"]
         for n, v in r.items()],
    )
    acen, pace, burst = r["ace-n-prod"], r["always-pace"], r["always-burst"]
    # vs AlwaysPace: meaningful latency cut at no stall cost
    assert acen["lat"] < 0.95 * pace["lat"], "ACE-N cuts latency vs AlwaysPace"
    assert acen["stall"] <= pace["stall"] * 1.3
    # vs AlwaysBurst: dramatically fewer stalls and lower latency
    assert acen["stall"] < 0.6 * burst["stall"]
    assert acen["lat"] < burst["lat"]
    assert acen["fps"] >= burst["fps"], "ACE-N delivers more frames"
