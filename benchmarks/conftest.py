"""Benchmark-suite configuration."""

import pytest


def pytest_configure(config):
    # Benches print their figure/table reproductions; keep output visible.
    config.option.verbose = max(config.option.verbose, 0)
