"""Fig. 15 — ablation study: ACE-N only, ACE-C only, full ACE.

Paper: removing ACE-N (keeping only complexity control) loses most of
the latency win but gains some quality; ACE-N alone gets most of the
latency improvement at similar quality; both partial designs still land
on the upper-left of the baseline envelope, and together they do best.
ACE-N's contribution is the larger of the two.
"""

from repro.bench import fmt_ms, print_table
from repro.bench.workloads import once, run_baselines, trace_library

VARIANTS = ("ace", "ace-n", "ace-c", "webrtc-star", "cbr")


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    return {
        name: (m.p95_latency(), m.mean_vmaf())
        for name, m in run_baselines(list(VARIANTS), trace,
                                     duration=30.0).items()
    }


def test_fig15_ablation(benchmark):
    results = once(benchmark, run_experiment)
    print_table(
        "Fig. 15: ablation (paper: ACE-N contributes more latency "
        "reduction; ACE-C adds quality; both beat the envelope)",
        ["variant", "p95 ms", "VMAF"],
        [[n, fmt_ms(v[0]), f"{v[1]:.1f}"] for n, v in results.items()],
    )
    ace, ace_n, ace_c = results["ace"], results["ace-n"], results["ace-c"]
    star = results["webrtc-star"]
    # both ablations improve latency over the paced baseline
    assert ace_n[0] < star[0]
    assert ace_c[0] < star[0] * 1.05
    # ACE-N's latency contribution larger than ACE-C's
    assert ace_n[0] < ace_c[0]
    # ACE-C preserves/raises quality vs WebRTC*
    assert ace_c[1] > star[1] - 2.0
    # full ACE at least matches the better ablation on latency
    assert ace[0] <= ace_n[0] * 1.15
