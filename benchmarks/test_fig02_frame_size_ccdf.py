"""Fig. 2 — CCDF of encoded frame size across four codecs.

Paper: transcoding the YouTube UGC corpus with low-latency presets,
every codec shows heavy-tailed frame sizes — ~10% of frames above 2x
the mean and ~1% above 5x. Here the UGC corpus is the mixed-category
synthetic source and the codecs are the calibrated models.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once
from repro.sim.rng import SeedSequenceFactory
from repro.video.codec.model import CodecModel
from repro.video.codec.presets import codec_config
from repro.video.codec.rate_control import AbrVbvRateControl
from repro.video.source import MixedSource

CODECS = ("x264", "x265", "vp9", "av1")
BITRATE = 20e6
FPS = 30.0
FRAMES = 4000


def encode_corpus(codec_name: str) -> np.ndarray:
    rngs = SeedSequenceFactory(21)
    codec = CodecModel(codec_config(codec_name), rngs.stream(f"codec.{codec_name}"))
    source = MixedSource(rngs.stream("source"), fps=FPS)
    rc = AbrVbvRateControl()
    sizes = []
    for frame in source.frames(FRAMES):
        planned = rc.plan_bytes(codec, frame, BITRATE, FPS)
        encoded = codec.encode(frame, planned, 0)
        rc.on_encoded(encoded.size_bytes, BITRATE, FPS)
        sizes.append(encoded.size_bytes)
    return np.asarray(sizes)


def run_experiment():
    rows = []
    for name in CODECS:
        sizes = encode_corpus(name)
        mean = sizes.mean()
        rows.append([
            name,
            f"{mean / 1000:.1f}",
            f"{(sizes > 2 * mean).mean() * 100:.1f}%",
            f"{(sizes > 3 * mean).mean() * 100:.2f}%",
            f"{(sizes > 5 * mean).mean() * 100:.2f}%",
            f"{sizes.max() / mean:.1f}x",
        ])
    return rows


def test_fig02_frame_size_ccdf(benchmark):
    rows = once(benchmark, run_experiment)
    print_table(
        "Fig. 2: encoded frame-size CCDF (paper: ~10% > 2x, ~1% > 5x)",
        ["codec", "mean KB", ">2x mean", ">3x mean", ">5x mean", "max/mean"],
        rows,
    )
    for row in rows:
        frac2 = float(row[2].rstrip("%"))
        frac5 = float(row[4].rstrip("%"))
        assert 2.0 <= frac2 <= 20.0, f"{row[0]}: >2x tail out of range"
        assert frac5 <= 4.0, f"{row[0]}: >5x tail too heavy"
