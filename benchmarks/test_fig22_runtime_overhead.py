"""Fig. 22 — runtime CPU overhead on the sender.

Paper: sender CPU rises with bitrate and frame rate; ACE's complexity
elevation adds negligible overhead next to those two factors.
"""

from repro.bench import print_table
from repro.bench.workloads import once
from repro.rtc.overhead import OverheadModel
from repro.video.codec.presets import x264_config

BITRATES = (5e6, 10e6, 20e6, 30e6)
FPS_SET = (30.0, 60.0)


def run_experiment():
    model = OverheadModel(x264_config())
    rows = []
    for fps in FPS_SET:
        for bitrate in BITRATES:
            plain = model.sender_cpu(bitrate, fps)
            ace = model.sender_cpu(bitrate, fps, elevated_fraction=0.05)
            rows.append((fps, bitrate, plain.cpu_percent, ace.cpu_percent,
                         plain.memory_mb))
    return rows


def test_fig22_runtime_overhead(benchmark):
    rows = once(benchmark, run_experiment)
    print_table(
        "Fig. 22: sender CPU vs bitrate/fps, WebRTC vs ACE "
        "(paper: ACE overhead negligible next to bitrate/fps)",
        ["fps", "Mbps", "CPU% plain", "CPU% ACE", "mem MB"],
        [[f"{fps:.0f}", f"{b / 1e6:.0f}", f"{p:.1f}", f"{a:.1f}", f"{m:.0f}"]
         for fps, b, p, a, m in rows],
    )
    by_key = {(fps, b): (p, a) for fps, b, p, a, _ in rows}
    # CPU grows with bitrate and fps
    assert by_key[(30.0, 30e6)][0] > by_key[(30.0, 5e6)][0]
    assert by_key[(60.0, 10e6)][0] > by_key[(30.0, 10e6)][0]
    # ACE delta is small next to the fps doubling delta
    ace_delta = by_key[(30.0, 10e6)][1] - by_key[(30.0, 10e6)][0]
    fps_delta = by_key[(60.0, 10e6)][0] - by_key[(30.0, 10e6)][0]
    assert ace_delta < 0.25 * fps_delta
