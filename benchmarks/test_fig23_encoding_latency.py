"""Fig. 23 — encoding-time distribution per baseline.

Paper: ACE's mean encoding time is only ~2 ms above the x264 baseline;
VP8 is slower than x264; Salsify is slowest (two encodes per frame).
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once, run_baseline, trace_library


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    results = {}
    for name in ("webrtc-star", "ace", "webrtc", "salsify"):
        metrics = run_baseline(name, trace, duration=20.0)
        times = [f.encode_time for f in metrics.frames]
        results[name] = (float(np.mean(times)), float(np.percentile(times, 95)))
    return results


def test_fig23_encoding_latency(benchmark):
    results = once(benchmark, run_experiment)
    print_table(
        "Fig. 23: encoding latency by baseline "
        "(paper: ACE ~2 ms over x264; Salsify slowest)",
        ["baseline", "mean ms", "p95 ms"],
        [[n, f"{m * 1000:.2f}", f"{p * 1000:.2f}"]
         for n, (m, p) in results.items()],
    )
    x264_mean = results["webrtc-star"][0]
    assert results["ace"][0] - x264_mean < 0.004, "ACE adds only ~2 ms"
    assert results["ace"][0] > x264_mean, "ACE must add some encode time"
    assert results["webrtc"][0] > x264_mean, "VP8 slower than x264"
    assert results["salsify"][0] > results["webrtc"][0], "Salsify slowest"
