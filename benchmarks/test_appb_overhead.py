"""Appendix B (Figs. 27-31) — CPU/memory overhead vs encoding complexity.

Paper: as complexity rises, the sender's CPU and memory grow
significantly while the receiver's remain almost unchanged — the
asymmetry ACE-C exploits. Receiver-side overhead also shows no increase
under ACE compared to original WebRTC.
"""

from repro.bench import print_table
from repro.bench.workloads import once
from repro.rtc.overhead import OverheadModel
from repro.video.codec.presets import x264_config

BITRATE = 15e6
FPS = 30.0


def run_experiment():
    model = OverheadModel(x264_config())
    rows = []
    for level in (0, 1, 2):
        s = model.sender_cpu(BITRATE, FPS, level_index=level)
        r = model.receiver_cpu(BITRATE, FPS, level_index=level)
        rows.append((level, s.cpu_percent, s.memory_mb,
                     r.cpu_percent, r.memory_mb))
    ace = model.sender_cpu(BITRATE, FPS, elevated_fraction=0.05)
    plain = model.sender_cpu(BITRATE, FPS)
    return rows, (plain.cpu_percent, ace.cpu_percent)


def test_appb_overhead(benchmark):
    rows, (plain_cpu, ace_cpu) = once(benchmark, run_experiment)
    print_table(
        "Figs. 27-31: CPU/memory vs complexity "
        "(paper: sender grows with complexity, receiver flat)",
        ["level", "sender CPU%", "sender MB", "receiver CPU%", "receiver MB"],
        [[f"c{l}", f"{sc:.1f}", f"{sm:.0f}", f"{rc:.1f}", f"{rm:.0f}"]
         for l, sc, sm, rc, rm in rows],
    )
    print(f"ACE (5% elevated) sender CPU: {ace_cpu:.1f}% vs plain {plain_cpu:.1f}%")
    sender_cpu = [sc for _, sc, _, _, _ in rows]
    receiver_cpu = [rc for _, _, _, rc, _ in rows]
    sender_mem = [sm for _, _, sm, _, _ in rows]
    receiver_mem = [rm for _, _, _, _, rm in rows]
    assert sender_cpu[2] > 1.3 * sender_cpu[0], "sender CPU grows with complexity"
    assert max(receiver_cpu) - min(receiver_cpu) < 1e-9, "receiver CPU flat"
    assert sender_mem[2] > sender_mem[0], "sender memory grows"
    assert max(receiver_mem) - min(receiver_mem) < 1e-9, "receiver memory flat"
    assert ace_cpu - plain_cpu < 0.1 * plain_cpu, "ACE overhead negligible"
