"""Fig. 5 — encoding vs decoding time across complexity levels.

Paper: encode time escalates from ~6 ms to ~12 ms as complexity rises
while decode time barely moves — the asymmetry that lets ACE-C spend
sender cycles without burdening receivers.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once
from repro.sim.rng import SeedSequenceFactory
from repro.video.codec.presets import make_x264_model
from repro.video.source import VideoSource

FRAMES = 500


def run_experiment():
    rngs = SeedSequenceFactory(41)
    codec = make_x264_model(rngs.stream("codec"))
    source = VideoSource.from_category("gaming", rngs.stream("source"))
    frames = list(source.frames(FRAMES))
    rows = []
    for level in (0, 1, 2):
        enc_times = [codec.encode(f, 80_000, level).encode_time for f in frames]
        dec_times = [codec.decode_time() for _ in frames]
        rows.append((level, float(np.mean(enc_times)), float(np.mean(dec_times))))
    return rows


def test_fig05_encode_decode_time(benchmark):
    rows = once(benchmark, run_experiment)
    print_table(
        "Fig. 5: encode/decode time vs complexity "
        "(paper: encode 6->12 ms, decode flat)",
        ["level", "encode ms", "decode ms"],
        [[f"c{l}", f"{e * 1000:.2f}", f"{d * 1000:.2f}"] for l, e, d in rows],
    )
    enc = [e for _, e, _ in rows]
    dec = [d for _, _, d in rows]
    assert enc[2] > 1.6 * enc[0], "encode time must roughly double"
    assert 0.004 < enc[0] < 0.010, "c0 encode near 6 ms"
    assert 0.009 < enc[2] < 0.016, "c2 encode near 12 ms"
    spread = (max(dec) - min(dec)) / np.mean(dec)
    assert spread < 0.15, "decode time must stay flat across complexity"
