"""Extension — RTC-vs-RTC fairness on a shared bottleneck.

The paper's fairness experiment (Fig. 24) measures impact on web
traffic; the natural follow-up is two RTC flows sharing a drop-tail
bottleneck. This bench runs (a) two identical ACE flows and (b) an ACE
flow against a paced WebRTC* flow, and checks that ACE's bursts do not
starve the co-flow: both flows get a usable share of the link and
comparable loss.
"""

import numpy as np

from repro.bench import fmt_ms, fmt_pct, print_table
from repro.bench.workloads import once
from repro.net.trace import BandwidthTrace
from repro.rtc.multiflow import FlowSpec, MultiFlowRtcSession
from repro.rtc.session import SessionConfig

LINK_MBPS = 30.0


def flow_rate(metrics, fps=30.0):
    sizes = [f.size_bytes for f in metrics.frames[-150:]]
    return float(np.mean(sizes) * 8 * fps) if sizes else 0.0


def run_pair(label_a: str, label_b: str):
    trace = BandwidthTrace.constant(LINK_MBPS * 1e6, duration=40.0)
    cfg = SessionConfig(duration=20.0, seed=5, initial_bwe_bps=5e6)
    session = MultiFlowRtcSession(
        [FlowSpec(label_a, flow_id=1), FlowSpec(label_b, flow_id=2)],
        trace, cfg)
    results = session.run()
    return {
        1: (label_a, flow_rate(results[1]), results[1].p95_latency(),
            results[1].loss_rate()),
        2: (label_b, flow_rate(results[2]), results[2].p95_latency(),
            results[2].loss_rate()),
    }


def run_experiment():
    return {
        "ace+ace": run_pair("ace", "ace"),
        "ace+webrtc-star": run_pair("ace", "webrtc-star"),
    }


def test_ext_rtc_fairness(benchmark):
    results = once(benchmark, run_experiment)
    rows = []
    for scenario, flows in results.items():
        for fid, (name, rate, p95, loss) in flows.items():
            rows.append([scenario, f"{fid}:{name}", f"{rate / 1e6:.1f}",
                         fmt_ms(p95), fmt_pct(loss)])
    print_table(
        "Extension: two RTC flows on one 30 Mbps bottleneck "
        "(ACE must not starve the co-flow)",
        ["scenario", "flow", "rate Mbps", "p95", "loss"],
        rows,
    )
    # (a) identical flows converge near fairness
    same = results["ace+ace"]
    rates = [same[1][1], same[2][1]]
    assert max(rates) / max(min(rates), 1.0) < 2.5
    # (b) the paced co-flow still gets a usable share against ACE
    mixed = results["ace+webrtc-star"]
    star_rate = mixed[2][1]
    assert star_rate > 0.2 * LINK_MBPS * 1e6 / 2, \
        "the paced flow keeps a usable share of its half"
    # neither flow suffers runaway loss
    for scenario, flows in results.items():
        for fid, (name, rate, p95, loss) in flows.items():
            assert loss < 0.08, f"{scenario}/{name}: loss {loss:.3f}"
