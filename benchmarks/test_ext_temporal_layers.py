"""Extension — graceful fps degradation via temporal layers.

The paper's evaluation disables frame dropping to keep quality
comparisons fair (§6.3); production WebRTC, however, degrades frame
rate before letting latency run away. This bench quantifies the
tradeoff on a squeezed link: with two temporal layers the sender sheds
enhancement frames under backlog, trading received fps for a latency
cut, while the base layer keeps motion continuity.
"""

from repro.bench import fmt_ms, print_table
from repro.bench.workloads import once
from repro.net.trace import BandwidthTrace
from repro.rtc.baselines import build_session
from repro.rtc.session import SessionConfig

LINK_MBPS = 4.0


def run_one(temporal_layers: int):
    trace = BandwidthTrace.constant(LINK_MBPS * 1e6, duration=35.0)
    cfg = SessionConfig(duration=20.0, seed=4, initial_bwe_bps=6e6)
    session = build_session("webrtc-star", trace, cfg)
    session.sender.config.temporal_layers = temporal_layers
    # degrade early: at 4 Mbps a frame interval of backlog is already
    # 80 ms, so the default 150 ms threshold reacts only to the deepest
    # episodes
    session.sender.config.frame_drop_queue_time = 0.08
    metrics = session.run()
    return {
        "p95": metrics.p95_latency(),
        "fps": metrics.received_fps(),
        "vmaf": metrics.mean_vmaf(),
        "dropped": session.sender.frames_dropped,
        "stall": metrics.stall_rate(),
    }


def run_experiment():
    return {
        "no-drop (paper setting)": run_one(1),
        "2 temporal layers": run_one(2),
    }


def test_ext_temporal_layers(benchmark):
    results = once(benchmark, run_experiment)
    print_table(
        f"Extension: graceful degradation on a {LINK_MBPS:g} Mbps link "
        "(drop enhancement frames instead of queueing them)",
        ["mode", "p95", "recv fps", "VMAF", "frames dropped", "stall"],
        [[mode, fmt_ms(v["p95"]), f"{v['fps']:.1f}", f"{v['vmaf']:.1f}",
          str(v["dropped"]), f"{v['stall'] * 100:.2f}%"]
         for mode, v in results.items()],
    )
    nodrop = results["no-drop (paper setting)"]
    layered = results["2 temporal layers"]
    assert layered["dropped"] > 10, "pressure must trigger drops"
    assert layered["p95"] < nodrop["p95"], "dropping buys latency"
    assert layered["fps"] < nodrop["fps"] + 1, "paid for with frame rate"
    assert layered["fps"] > 14.0, "base layer keeps at least half rate"
