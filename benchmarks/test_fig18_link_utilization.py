"""Fig. 18 — link utilization at a 10 ms timescale.

Paper: ACE's bursts reach higher instantaneous sending rates (better
transient use of the underestimated link) with longer silent periods,
while never persistently overshooting the bandwidth the way fixed
pacing's smooth stream underuses it.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once, run_baseline, trace_library


def rate_stats(metrics):
    vs_bw = metrics.utilization_ratios(bin_s=0.01, against="bandwidth")
    arr = np.asarray(vs_bw)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "silent": float((arr < 0.01).mean()),
        "over": float((arr > 1.0).mean()),
    }


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    ace = run_baseline("ace", trace, duration=25.0)
    pace = run_baseline("webrtc-star", trace, duration=25.0)
    return {"ace": rate_stats(ace), "pace": rate_stats(pace)}


def test_fig18_link_utilization(benchmark):
    r = once(benchmark, run_experiment)
    print_table(
        "Fig. 18: 10 ms sending rate / bandwidth "
        "(paper: ACE higher transient utilization, more silence)",
        ["scheme", "p50", "p90", "p99", "silent bins", "bins > BW"],
        [[n, f"{v['p50']:.2f}", f"{v['p90']:.2f}", f"{v['p99']:.2f}",
          f"{v['silent'] * 100:.1f}%", f"{v['over'] * 100:.1f}%"]
         for n, v in r.items()],
    )
    assert r["ace"]["p99"] > r["pace"]["p99"], \
        "ACE reaches higher instantaneous rates"
    assert r["ace"]["silent"] > r["pace"]["silent"], \
        "ACE has longer silent periods between bursts"
