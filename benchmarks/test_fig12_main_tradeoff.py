"""Fig. 12 — the headline latency/quality tradeoff across trace classes.

Paper: WebRTC* has the highest quality but highest latency; CBR the
lowest latency but 7-15 VMAF lower; ACE breaks the tradeoff — P95
latency 34-43% below WebRTC* at the same quality tier, consistently
across Wi-Fi/4G/5G traces.
"""

from repro.bench import fmt_ms, print_table
from repro.bench.workloads import once, run_baselines, trace_library

BASELINES = ("ace", "webrtc-star", "webrtc", "webrtc-b", "cbr", "salsify")


def run_experiment():
    results = {}
    for cls in ("wifi", "4g", "5g"):
        trace = trace_library().by_class(cls)[0]
        results[cls] = {
            name: (m.p95_latency(), m.mean_vmaf(), m.loss_rate())
            for name, m in run_baselines(list(BASELINES), trace,
                                         duration=30.0).items()
        }
    return results


def test_fig12_main_tradeoff(benchmark):
    results = once(benchmark, run_experiment)
    for cls, by_name in results.items():
        print_table(
            f"Fig. 12 ({cls}): P95 latency vs mean VMAF "
            "(paper: ACE upper-left; 34-43% P95 cut vs WebRTC*)",
            ["baseline", "p95 ms", "VMAF", "loss"],
            [[n, fmt_ms(v[0]), f"{v[1]:.1f}", f"{v[2] * 100:.2f}%"]
             for n, v in by_name.items()],
        )
        ace = by_name["ace"]
        star = by_name["webrtc-star"]
        cbr = by_name["cbr"]
        reduction = 1 - ace[0] / star[0]
        print(f"{cls}: ACE P95 reduction vs WebRTC*: {reduction * 100:.1f}%")
        # Shape assertions (who wins, roughly by how much). Cellular
        # gains are less pronounced (the paper notes congestion-driven
        # latency dominates there), so the big-cut requirement applies
        # to Wi-Fi.
        min_cut = 0.25 if cls == "wifi" else 0.08
        assert reduction > min_cut, f"{cls}: ACE must cut P95"
        assert ace[1] > star[1] - 5.0, f"{cls}: ACE keeps WebRTC*-tier quality"
        if cls == "wifi":
            # On cellular the paper notes congestion-related latency
            # dominates and the orderings compress; the clean CBR-vs-
            # WebRTC* latency/quality trade shows on Wi-Fi. (On deep-dip
            # cellular traces CBR's per-frame budget adapts faster than
            # ABR's quality setpoint, which can even flip its quality
            # rank — recorded as a deviation in EXPERIMENTS.md.)
            assert cbr[0] < star[0], f"{cls}: CBR lowest-latency side"
            assert cbr[1] < star[1], f"{cls}: CBR pays quality for latency"
            assert ace[1] > cbr[1] - 2.0, f"{cls}: ACE at/above CBR quality"
