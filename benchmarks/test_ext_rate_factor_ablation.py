"""Extension ablation — the burstiness-level (token-rate factor) choice.

This repo interprets ACE-N's "token rate = the sending rate determined
by the CCA" through WebRTC's pacing practice: the token rate scales
1x -> 2x the BWE with the adapted bucket (DESIGN.md / EXPERIMENTS.md
"interpretation choices"). This bench quantifies that choice: a strict
1x token rate (the literal reading) retains part of the latency win;
the adaptive factor recovers the rest; a fixed high factor buys a
little more latency at a loss/quality cost.
"""

from repro.bench import fmt_ms, fmt_pct, print_table
from repro.bench.workloads import once, run_baseline, trace_library
from repro.core.ace_n import AceNConfig

VARIANTS = {
    "strict-1x": AceNConfig(min_rate_factor=1.0, max_rate_factor=1.0),
    "adaptive-2x (default)": AceNConfig(),
    "fixed-2.5x": AceNConfig(min_rate_factor=2.5, max_rate_factor=2.5),
}


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    results = {}
    for label, cfg in VARIANTS.items():
        m = run_baseline("ace", trace, duration=25.0, ace_n_config=cfg)
        results[label] = (m.p95_latency(), m.mean_vmaf(), m.loss_rate())
    star = run_baseline("webrtc-star", trace, duration=25.0)
    return results, (star.p95_latency(), star.mean_vmaf())


def test_ext_rate_factor_ablation(benchmark):
    results, star = once(benchmark, run_experiment)
    print_table(
        "Ablation: ACE-N token-rate factor interpretation",
        ["variant", "p95 ms", "VMAF", "loss"],
        [[label, fmt_ms(v[0]), f"{v[1]:.1f}", fmt_pct(v[2])]
         for label, v in results.items()],
    )
    print(f"WebRTC* reference: p95 {fmt_ms(star[0])}, VMAF {star[1]:.1f}")
    strict = results["strict-1x"]
    adaptive = results["adaptive-2x (default)"]
    fixed = results["fixed-2.5x"]
    # even the literal 1x reading beats the paced baseline
    assert strict[0] < star[0]
    # the adaptive factor recovers additional latency
    assert adaptive[0] < strict[0]
    # a fixed high factor pays in loss relative to the adaptive one
    assert fixed[2] >= adaptive[2]
