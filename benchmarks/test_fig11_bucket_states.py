"""Fig. 11 / Algorithm 1 — the bucket-size adaptation state machine.

The paper's Fig. 11 walks the bucket through its states: additive
increase, application limit, queue-threshold decrease, loss halving,
and fast recovery. This bench drives the controller with a scripted
feedback sequence that visits each state in turn and prints the
resulting bucket trajectory, verifying every transition fires.
"""

from repro.bench import print_table
from repro.bench.workloads import once
from repro.core.ace_n import AceNConfig, AceNController
from repro.transport.feedback import FeedbackMessage, PacketReport


def feedback(now, owds, nacks=(), start_seq=0, spacing=0.005):
    reports = [PacketReport(seq=start_seq + i, send_time=now - 0.05 + i * spacing,
                            arrival_time=now - 0.05 + i * spacing + owd,
                            size_bytes=1200)
               for i, owd in enumerate(owds)]
    return FeedbackMessage(created_at=now, reports=reports,
                           nacked_seqs=list(nacks),
                           highest_seq=start_seq + len(owds) - 1)


def run_experiment():
    ctrl = AceNController(AceNConfig(
        initial_bucket_bytes=20_000, additive_step_bytes=2_400,
        threshold_packets=10, alpha=0.8))
    trajectory = []
    t, seq = 0.0, 0

    def step(owds, nacks=(), label=""):
        nonlocal t, seq
        ctrl.on_feedback(feedback(t, owds, nacks=nacks, start_seq=seq),
                         now=t, reverse_delay=0.01)
        trajectory.append((t, ctrl.bucket_bytes, label))
        seq += len(owds)
        t += 0.05

    # t0-t1: additive increase with an empty network queue
    ctrl.on_frame_enqueued(80_000)
    for _ in range(5):
        step([0.02, 0.02], label="probe")
    # t1-t2: application limit — a small previous frame caps growth
    ctrl.on_frame_enqueued(ctrl.bucket_bytes + 1_000)
    for _ in range(4):
        step([0.02, 0.02], label="app-limit")
    ctrl.on_frame_enqueued(200_000)
    # t4-t5: persistent queue above threshold -> shrink by the excess
    for _ in range(5):
        step([0.045, 0.045], label="queue>T")
    # t5-t6: packet loss with a large pre-loss queue -> halve
    step([0.08, 0.08], nacks=[seq + 1], label="loss")
    # queue drains -> t7-t8: fast recovery restores the bucket
    t += 0.2
    for _ in range(3):
        step([0.02, 0.02], label="recovery")
    reasons = [d.reason for d in ctrl.decisions]
    return trajectory, reasons


def test_fig11_bucket_states(benchmark):
    trajectory, reasons = once(benchmark, run_experiment)
    print_table(
        "Fig. 11: scripted walk through the bucket adaptation states",
        ["t (s)", "bucket KB", "phase"],
        [[f"{t:.2f}", f"{b / 1000:.1f}", label] for t, b, label in trajectory],
    )
    for expected in ("additive-increase", "app-limit", "queue-threshold",
                     "loss-halve", "fast-recovery"):
        assert expected in reasons, f"state {expected} never fired"
    # the loss halving must be visible in the trajectory
    buckets = [b for _, b, _ in trajectory]
    drops = [(a - b) / a for a, b in zip(buckets, buckets[1:]) if a > 0]
    assert max(drops) > 0.3, "a visible halving-scale drop must occur"
    # and recovery must bring the bucket back up afterwards
    assert buckets[-1] > min(buckets)
