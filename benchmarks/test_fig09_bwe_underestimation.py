"""Fig. 9 — low-latency CCAs consistently underestimate bandwidth.

Paper: testing GCC over mixed Wi-Fi/4G/5G conditions, the bandwidth
estimate sits below the actual available bandwidth over 90% of the
time — the headroom that makes transient bursts safe.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once, run_baseline, trace_library


def run_experiment():
    rows = []
    all_samples = []
    for cls in ("wifi", "4g", "5g"):
        trace = trace_library().by_class(cls)[0]
        metrics = run_baseline("webrtc-star", trace, duration=25.0)
        # drop the first 5 s of GCC ramp-up, as the steady-state claim is
        # about tracking, not cold start
        samples = metrics.bwe_accuracy_samples(bin_s=0.01)
        steady = samples[len(samples) // 5:]
        under = float(np.mean([s < 1.0 for s in steady]))
        median = float(np.median(steady))
        rows.append([cls, f"{under * 100:.1f}%", f"{median:.2f}"])
        all_samples.extend(steady)
    overall = float(np.mean([s < 1.0 for s in all_samples]))
    return rows, overall


def test_fig09_bwe_underestimation(benchmark):
    rows, overall = once(benchmark, run_experiment)
    print_table(
        "Fig. 9: GCC bandwidth-estimation accuracy "
        "(paper: underestimates >90% of the time)",
        ["trace class", "time underestimating", "median BWE/BW"],
        rows,
    )
    print(f"overall underestimation fraction: {overall * 100:.1f}%")
    assert overall > 0.85, "GCC must underestimate most of the time"
    for row in rows:
        assert float(row[2]) < 1.05, "median estimate should sit below capacity"
