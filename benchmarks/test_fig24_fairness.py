"""Fig. 24 — fairness: page load time of competing web traffic.

Paper: despite sending unevenly at small timescales, ACE's impact on
competing page loads stays in the middle of the baseline pack — it does
not bully co-flows.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once, trace_library
from repro.rtc.baselines import build_session
from repro.rtc.session import SessionConfig

BASELINES = ("ace", "webrtc-star", "webrtc-b", "always-burst")


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    results = {}
    for name in BASELINES:
        cfg = SessionConfig(duration=40.0, seed=4, cross_traffic=True,
                            cross_traffic_interarrival=4.0,
                            initial_bwe_bps=6e6)
        session = build_session(name, trace, cfg)
        session.run()
        loads = session.cross_traffic.completed_load_times()
        results[name] = (float(np.mean(loads)) if loads else float("nan"),
                         len(loads))
    return results


def test_fig24_fairness(benchmark):
    results = once(benchmark, run_experiment)
    print_table(
        "Fig. 24: competing page load times "
        "(paper: ACE mid-pack — no harm to co-flows)",
        ["baseline", "mean load s", "pages completed"],
        [[n, f"{v[0]:.2f}", str(v[1])] for n, v in results.items()],
    )
    loads = {n: v[0] for n, v in results.items() if not np.isnan(v[0])}
    assert "ace" in loads and len(loads) >= 3
    # ACE within the min/max envelope of the other baselines (+20% slack)
    others = [v for n, v in loads.items() if n != "ace"]
    assert loads["ace"] <= max(others) * 1.2
    for n, (_, count) in results.items():
        assert count >= 2, f"{n}: cross traffic must make progress"
