"""Fig. 4 — impact of encoding complexity on frame size and encode time.

Paper: at equal quality, moving from the lowest to the highest
complexity level reduces frame size by 38-51% (codec-dependent) at the
cost of roughly doubled encoding time; newer codecs need fewer bits
overall (the dashed line) but keep the same tradeoff.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.workloads import once
from repro.sim.rng import SeedSequenceFactory
from repro.video.codec.model import CodecModel
from repro.video.codec.presets import codec_config
from repro.video.source import VideoSource

CODECS = ("x264", "x265", "vp9", "av1")
QUALITY = 85.0
FRAMES = 600


def sweep_codec(name: str):
    rngs = SeedSequenceFactory(31)
    codec = CodecModel(codec_config(name), rngs.stream(f"codec.{name}"))
    source = VideoSource.from_category("vlog", rngs.stream("source"))
    frames = list(source.frames(FRAMES))
    for f in frames:
        codec.observe_satd(f.satd)
    per_level = []
    for level in (0, 1, 2):
        sizes, times = [], []
        for f in frames:
            planned = codec.natural_bits(f, level, QUALITY) / 8.0
            encoded = codec.encode(f, planned, level)
            sizes.append(encoded.size_bytes)
            times.append(encoded.encode_time)
        per_level.append((float(np.mean(sizes)), float(np.mean(times))))
    return per_level


def run_experiment():
    results = {}
    for name in CODECS:
        results[name] = sweep_codec(name)
    return results


def test_fig04_complexity_tradeoff(benchmark):
    results = once(benchmark, run_experiment)
    # Normalize frame size by the largest (x264 c0), as the paper does.
    norm = results["x264"][0][0]
    rows = []
    for name, levels in results.items():
        for idx, (size, time) in enumerate(levels):
            rows.append([name, f"c{idx}", f"{size / norm:.2f}",
                         f"{time * 1000:.1f}"])
    print_table(
        "Fig. 4: frame size (normalized) and encode time vs complexity "
        "(paper: max complexity saves 38-51%)",
        ["codec", "level", "norm size", "encode ms"],
        rows,
    )
    for name, levels in results.items():
        size_c0, time_c0 = levels[0]
        size_c2, time_c2 = levels[2]
        reduction = 1 - size_c2 / size_c0
        assert 0.30 <= reduction <= 0.60, f"{name}: reduction {reduction:.2f}"
        assert time_c2 > 1.4 * time_c0, f"{name}: encode time must rise"
    # newer codecs below the x264 line at c0 (the dashed-line effect)
    assert results["av1"][0][0] < results["x265"][0][0] < results["x264"][0][0]
