"""Appendix A — ACE-C generalizes across mainstream encoders.

Paper: the complexity-control mechanism maps onto HEVC (x265 min-cu-size),
VP9 and AV1 (speed + block-division) the same way it maps onto x264's
Table 2 parameters. Here the same ACE pipeline runs over each codec
model; the latency cut versus that codec's own paced baseline should
hold, and the newer codecs' higher efficiency shows in their quality.
"""

from repro.bench import fmt_ms, print_table
from repro.bench.workloads import once, run_baseline, trace_library

CODECS = ("x264", "x265", "vp9", "av1")


def run_experiment():
    trace = trace_library().by_class("wifi")[0]
    results = {}
    for codec in CODECS:
        ace = run_baseline("ace", trace, duration=20.0,
                           codec_override=codec)
        pace = run_baseline("webrtc-star", trace, duration=20.0,
                            codec_override=codec)
        results[codec] = {
            "ace_p95": ace.p95_latency(),
            "pace_p95": pace.p95_latency(),
            "ace_vmaf": ace.mean_vmaf(),
            "pace_vmaf": pace.mean_vmaf(),
        }
    return results


def test_appa_codec_generalization(benchmark):
    results = once(benchmark, run_experiment)
    rows = []
    for codec, v in results.items():
        cut = 1 - v["ace_p95"] / v["pace_p95"]
        rows.append([codec, fmt_ms(v["ace_p95"]), fmt_ms(v["pace_p95"]),
                     f"{cut * 100:.0f}%", f"{v['ace_vmaf']:.1f}",
                     f"{v['pace_vmaf']:.1f}"])
    print_table(
        "Appendix A: ACE over x264/x265/VP9/AV1 "
        "(paper: the complexity mechanism generalizes)",
        ["codec", "ACE p95", "paced p95", "cut", "ACE VMAF", "paced VMAF"],
        rows,
    )
    for codec, v in results.items():
        cut = 1 - v["ace_p95"] / v["pace_p95"]
        assert cut > 0.15, f"{codec}: ACE must cut latency on every codec"
        assert v["ace_vmaf"] > v["pace_vmaf"] - 5.0, \
            f"{codec}: quality tier preserved"
    # newer codecs deliver higher quality at the same network conditions
    assert results["av1"]["ace_vmaf"] > results["x264"]["ace_vmaf"]
