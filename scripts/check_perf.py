#!/usr/bin/env python3
"""Gate simulator performance against the committed baseline.

Compares a pytest-benchmark JSON dump of
``benchmarks/test_perf_simulator.py`` against the snapshot in
``BENCH_perf_simulator.json`` and exits non-zero when any bench's
minimum wall time regressed by more than ``--threshold`` (default
1.5x). Minima are compared — the most load-robust statistic on shared
CI machines.

Usage:

    PYTHONPATH=src python -m pytest benchmarks/test_perf_simulator.py \
        --benchmark-json=/tmp/bench.json
    python scripts/check_perf.py /tmp/bench.json          # gate
    python scripts/check_perf.py /tmp/bench.json --update # new baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_SNAPSHOT = Path(__file__).resolve().parent.parent / \
    "BENCH_perf_simulator.json"
DEFAULT_THRESHOLD = 1.5

#: telemetry-overhead gate: the instrumented session bench is compared
#: against its telemetry-off twin from the *same run* (machine-
#: independent, unlike the absolute snapshot comparison).
TELEMETRY_BENCH = "test_perf_full_session_telemetry_on"
TELEMETRY_BASE_BENCH = "test_perf_full_session_throughput"
DEFAULT_TELEMETRY_OVERHEAD = 1.5

#: profiler-off gate: a session that attached and then detached the
#: event-loop self-profiler must run at the plain session's speed —
#: detaching restores the exact unprofiled dispatch path, so the
#: tolerance is tight (noise allowance only).
PROFILER_OFF_BENCH = "test_perf_full_session_profiler_off"
PROFILER_BASE_BENCH = "test_perf_full_session_throughput"
DEFAULT_PROFILER_OVERHEAD = 1.05

#: batch-engine speedup gates: the batch bench must beat its reference
#: twin *from the same run* by at least the floor factor. Two pairs:
#: the 20 Mbps session pair (ratio bounded by the shared decision-plane
#: code — GCC, ACE-N, rate control run identically on both engines, an
#: Amdahl floor measured at ~45% of reference wall time) and the
#: packet-heavy macro-step pair (~110 packets/frame, where the
#: vectorized pipeline's per-packet advantage dominates; measured
#: ~7x, gated at 4x for machine noise).
BATCH_SESSION_BENCH = "test_perf_batch_session_throughput"
BATCH_SESSION_BASE = "test_perf_full_session_throughput"
DEFAULT_BATCH_SESSION_SPEEDUP = 1.3
BATCH_MACRO_BENCH = "test_perf_batch_macro_step"
BATCH_MACRO_BASE = "test_perf_reference_macro_step"
DEFAULT_BATCH_MACRO_SPEEDUP = 4.0


#: live-load gate defaults: N concurrent loopback sessions on one event
#: loop must keep the fleet p99 pacing delay (time from a packet's
#: pacer-release decision to its socket write) under the bound. The
#: bound is deliberately loose — shared CI machines add scheduling
#: noise — but catches the failure mode that matters: timer leaks or
#: per-session O(fleet) work stacking up until pacing collapses.
DEFAULT_LIVE_SESSIONS = 8
DEFAULT_LIVE_DURATION = 2.0
DEFAULT_LIVE_P99_MS = 250.0

#: autoscale gate defaults: the ceiling probe (geometric ascent +
#: bisection over short live fleets, see repro.live.autoscale) must
#: find at least this many sustainable sessions per core. The floor is
#: conservative — one session per core is table stakes; the probe's
#: value is the *artifact* (BENCH_live_ceiling.json + the history
#: line), which records what the box actually sustained over time.
DEFAULT_AUTOSCALE_FLOOR = 1.0
DEFAULT_AUTOSCALE_MAX = 16
DEFAULT_AUTOSCALE_DURATION = 1.0
DEFAULT_CEILING_ARTIFACT = Path(__file__).resolve().parent.parent / \
    "BENCH_live_ceiling.json"

#: every check_perf invocation appends one JSON line here (gate
#: results, bench minima, live-load / autoscale outcomes) so perf
#: history accumulates across CI runs instead of vanishing with each
#: job. CI uploads it as an artifact.
DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / \
    "BENCH_history.jsonl"


def load_mins(bench_json: Path) -> dict[str, float]:
    """Per-bench minimum seconds from a pytest-benchmark dump."""
    data = json.loads(bench_json.read_text())
    return {b["name"]: float(b["stats"]["min"]) for b in data["benchmarks"]}


def append_history(path: Path, record: dict) -> None:
    """Append one run record to the bench-history JSONL file."""
    import time

    record = {"at": round(time.time(), 3), **record}
    with path.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def check_autoscale(floor: float, max_sessions: int, duration: float,
                    artifact: Path) -> tuple[bool, dict]:
    """Probe the sessions/core ceiling and gate it against ``floor``.

    Returns ``(ok, result)``; the probe artifact is written either way
    so a failing box still leaves evidence of what it sustained.
    """
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.live.autoscale import AutoscaleConfig, run_autoscale

    result = run_autoscale(
        AutoscaleConfig(max_sessions=max_sessions, duration=duration),
        echo=lambda line: print(f"       {line}"),
        artifact_path=str(artifact))
    per_core = result["sessions_per_core"]
    ok = per_core >= floor
    status = "ok" if ok else "FAIL"
    state = ("converged" if result["converged"]
             else "at cap" if result["at_cap"] else "not converged")
    print(f"  {status:>4} live-autoscale: ceiling "
          f"{result['ceiling_sessions']} sessions "
          f"({per_core:.2f}/core, {state}; floor {floor:g}/core) "
          f"-> {artifact}")
    return ok, result


def check_live_load(sessions: int, duration: float,
                    p99_ms: float) -> tuple[bool, dict]:
    """Run the multi-session live supervisor and gate fleet pacing p99.

    Returns ``(ok, digest)``. Runs in-process (sys.path gets src/) so
    the gate exercises exactly the working tree under test.
    """
    import os

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.live.server import LoadConfig, run_load

    cores = os.cpu_count() or 1
    supervisor = run_load(LoadConfig(
        sessions=sessions, mix=("ace",), ramp=0.0,
        duration=duration, drain=0.3))
    summary = supervisor.summary
    failed = summary["failed"]
    p99 = summary["pacing_p99_ms"]
    ok = failed == 0 and p99 is not None and p99 <= p99_ms
    status = "ok" if ok else "FAIL"
    print(f"  {status:>4} live-load: {sessions} sessions "
          f"({sessions / cores:.1f}/core), {summary['completed']} completed, "
          f"{failed} failed; fleet pacing p99 "
          f"{'-' if p99 is None else f'{p99:.2f} ms'} "
          f"(limit {p99_ms:g} ms)")
    digest = {
        "ok": ok, "sessions": sessions, "completed": summary["completed"],
        "failed": failed, "pacing_p99_ms": p99, "limit_ms": p99_ms,
        "cpu_total_s": summary.get("cpu_total_s"),
        "rss_mb": summary.get("rss_mb"),
    }
    return ok, digest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", type=Path, nargs="?", default=None,
                        help="pytest-benchmark --benchmark-json output "
                             "(optional with --live-load)")
    parser.add_argument("--live-load", action="store_true", dest="live_load",
                        help="also run the multi-session live-load gate: "
                             "N concurrent loopback sessions on one event "
                             "loop, fleet pacing p99 under --live-p99-ms")
    parser.add_argument("--live-sessions", type=int,
                        default=DEFAULT_LIVE_SESSIONS, dest="live_sessions")
    parser.add_argument("--live-duration", type=float,
                        default=DEFAULT_LIVE_DURATION, dest="live_duration",
                        help="media seconds per live-load session")
    parser.add_argument("--live-p99-ms", type=float,
                        default=DEFAULT_LIVE_P99_MS, dest="live_p99_ms",
                        help="fleet pacing-delay p99 bound in ms "
                             f"(default {DEFAULT_LIVE_P99_MS:g})")
    parser.add_argument("--snapshot", type=Path, default=DEFAULT_SNAPSHOT)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="fail when min time exceeds baseline x this "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--telemetry-overhead", type=float,
                        default=DEFAULT_TELEMETRY_OVERHEAD,
                        dest="telemetry_overhead",
                        help="fail when the telemetry-on session bench "
                             "exceeds the telemetry-off one by more than "
                             f"this factor (default "
                             f"{DEFAULT_TELEMETRY_OVERHEAD})")
    parser.add_argument("--profiler-overhead", type=float,
                        default=DEFAULT_PROFILER_OVERHEAD,
                        dest="profiler_overhead",
                        help="fail when the profiler-off session bench "
                             "exceeds the plain one by more than this "
                             f"factor (default {DEFAULT_PROFILER_OVERHEAD})")
    parser.add_argument("--batch-session-speedup", type=float,
                        default=DEFAULT_BATCH_SESSION_SPEEDUP,
                        dest="batch_session_speedup",
                        help="fail when the batch-engine session bench is "
                             "not at least this much faster than the "
                             "reference one from the same run (default "
                             f"{DEFAULT_BATCH_SESSION_SPEEDUP})")
    parser.add_argument("--batch-macro-speedup", type=float,
                        default=DEFAULT_BATCH_MACRO_SPEEDUP,
                        dest="batch_macro_speedup",
                        help="fail when the batch-engine macro-step bench "
                             "is not at least this much faster than its "
                             "reference twin from the same run (default "
                             f"{DEFAULT_BATCH_MACRO_SPEEDUP})")
    parser.add_argument("--live-autoscale", action="store_true",
                        dest="live_autoscale",
                        help="also probe the sessions/core ceiling "
                             "(repro.live.autoscale) and gate it against "
                             "--autoscale-floor; writes --ceiling-out")
    parser.add_argument("--autoscale-floor", type=float,
                        default=DEFAULT_AUTOSCALE_FLOOR,
                        dest="autoscale_floor",
                        help="minimum sustainable sessions per core "
                             f"(default {DEFAULT_AUTOSCALE_FLOOR:g})")
    parser.add_argument("--autoscale-max", type=int,
                        default=DEFAULT_AUTOSCALE_MAX, dest="autoscale_max",
                        help="fleet-size cap for the ceiling probe "
                             f"(default {DEFAULT_AUTOSCALE_MAX})")
    parser.add_argument("--autoscale-duration", type=float,
                        default=DEFAULT_AUTOSCALE_DURATION,
                        dest="autoscale_duration",
                        help="media seconds per probe round "
                             f"(default {DEFAULT_AUTOSCALE_DURATION:g})")
    parser.add_argument("--ceiling-out", type=Path,
                        default=DEFAULT_CEILING_ARTIFACT, dest="ceiling_out",
                        help="where the ceiling artifact is written")
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY,
                        help="bench-history JSONL every run appends to")
    parser.add_argument("--no-history", action="store_true",
                        dest="no_history",
                        help="skip the bench-history append")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the snapshot from bench_json and exit")
    args = parser.parse_args(argv)

    record: dict = {"kind": "check_perf", "argv": list(argv or sys.argv[1:])}

    def finish(code: int) -> int:
        record["exit_code"] = code
        if not args.no_history:
            append_history(args.history, record)
        return code

    live_ok = True
    if args.live_load:
        live_ok, record["live_load"] = check_live_load(
            args.live_sessions, args.live_duration, args.live_p99_ms)
    autoscale_ok = True
    if args.live_autoscale:
        autoscale_ok, autoscale = check_autoscale(
            args.autoscale_floor, args.autoscale_max,
            args.autoscale_duration, args.ceiling_out)
        record["autoscale"] = {
            "ok": autoscale_ok,
            "ceiling_sessions": autoscale["ceiling_sessions"],
            "sessions_per_core": autoscale["sessions_per_core"],
            "cores": autoscale["cores"],
            "converged": autoscale["converged"],
            "at_cap": autoscale["at_cap"],
        }
    if args.bench_json is None:
        if not (args.live_load or args.live_autoscale):
            parser.error("need a bench_json dump, --live-load, "
                         "and/or --live-autoscale")
        if live_ok and autoscale_ok:
            print("check_perf: live gate(s) passed")
            return finish(0)
        print("check_perf: live gate(s) failed", file=sys.stderr)
        return finish(1)

    current = load_mins(args.bench_json)
    record["benches"] = {k: round(v, 6) for k, v in sorted(current.items())}
    if not current:
        print("check_perf: no benchmarks in dump", file=sys.stderr)
        return finish(2)

    if args.update:
        snap = {
            "_comment": "Committed perf baseline for "
                        "benchmarks/test_perf_simulator.py; min wall-clock "
                        "seconds per bench. Regenerate with "
                        "scripts/check_perf.py --update <benchmark-json>.",
            "benchmarks": {k: round(v, 6) for k, v in current.items()},
        }
        args.snapshot.write_text(json.dumps(snap, indent=2, sort_keys=True)
                                 + "\n")
        print(f"check_perf: wrote {len(current)} baselines "
              f"to {args.snapshot}")
        return finish(0)

    baseline = json.loads(args.snapshot.read_text())["benchmarks"]
    failures = []
    for name in sorted(baseline):
        if name not in current:
            print(f"  skip {name}: not in this run (marker/skip?)")
            continue
        ratio = current[name] / baseline[name]
        status = "FAIL" if ratio > args.threshold else "ok"
        print(f"  {status:>4} {name}: {current[name] * 1e3:.2f} ms "
              f"vs baseline {baseline[name] * 1e3:.2f} ms ({ratio:.2f}x)")
        if ratio > args.threshold:
            failures.append(name)
    for name in sorted(set(current) - set(baseline)):
        print(f"  new  {name}: {current[name] * 1e3:.2f} ms (no baseline)")

    if TELEMETRY_BENCH in current and TELEMETRY_BASE_BENCH in current:
        ratio = current[TELEMETRY_BENCH] / current[TELEMETRY_BASE_BENCH]
        status = "FAIL" if ratio > args.telemetry_overhead else "ok"
        print(f"  {status:>4} telemetry overhead: "
              f"{current[TELEMETRY_BENCH] * 1e3:.2f} ms on vs "
              f"{current[TELEMETRY_BASE_BENCH] * 1e3:.2f} ms off "
              f"({ratio:.2f}x, limit {args.telemetry_overhead}x)")
        if ratio > args.telemetry_overhead:
            failures.append("telemetry-overhead")

    if PROFILER_OFF_BENCH in current and PROFILER_BASE_BENCH in current:
        ratio = current[PROFILER_OFF_BENCH] / current[PROFILER_BASE_BENCH]
        status = "FAIL" if ratio > args.profiler_overhead else "ok"
        print(f"  {status:>4} profiler-off overhead: "
              f"{current[PROFILER_OFF_BENCH] * 1e3:.2f} ms detached vs "
              f"{current[PROFILER_BASE_BENCH] * 1e3:.2f} ms plain "
              f"({ratio:.2f}x, limit {args.profiler_overhead}x)")
        if ratio > args.profiler_overhead:
            failures.append("profiler-off-overhead")

    for batch, base, floor, tag in (
            (BATCH_SESSION_BENCH, BATCH_SESSION_BASE,
             args.batch_session_speedup, "batch-session-speedup"),
            (BATCH_MACRO_BENCH, BATCH_MACRO_BASE,
             args.batch_macro_speedup, "batch-macro-speedup")):
        if batch in current and base in current:
            speedup = current[base] / current[batch]
            status = "FAIL" if speedup < floor else "ok"
            print(f"  {status:>4} {tag}: reference "
                  f"{current[base] * 1e3:.2f} ms vs batch "
                  f"{current[batch] * 1e3:.2f} ms "
                  f"({speedup:.2f}x, floor {floor}x)")
            if speedup < floor:
                failures.append(tag)

    if not live_ok:
        failures.append("live-load")
    if not autoscale_ok:
        failures.append("live-autoscale")
    record["failures"] = list(failures)
    if failures:
        print(f"check_perf: {len(failures)} regression(s) beyond "
              f"{args.threshold}x: {', '.join(failures)}", file=sys.stderr)
        return finish(1)
    print("check_perf: all benches within threshold")
    return finish(0)


if __name__ == "__main__":
    sys.exit(main())
